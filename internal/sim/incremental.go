package sim

import (
	"obm/internal/core"
	"obm/internal/trace"
)

// The incremental step surface: feed compiled requests to one algorithm
// instance, one request or one chunk at a time, and observe cumulative
// costs and matching deltas as they accrue. This is the single code path
// under every consumer of an algorithm — the replay loops in this package
// (Run/RunCompiled/RunSource through costMeter), the benchmarks, and the
// live matching engine (internal/engine), which ingests an unbounded
// request stream and reports cumulative costs after every batch.
//
// Sharing the accumulator matters for more than code reuse: cumulative
// costs fold through core.ShardStep.Add in request order, one += per cost
// component per step, so any two consumers fed the same request sequence
// produce bit-identical cumulative cost streams. That is the determinism
// contract the engine's acceptance test pins (engine ingest ≡ offline
// RunSource replay, byte for byte, on all four paper trace families).

// Counters is a snapshot of an Incremental's cumulative totals.
type Counters struct {
	// Served is the number of requests fed so far.
	Served int64
	// Routing and Reconfig are the cumulative cost components, folded in
	// request order (bit-identical to a sequential replay's cost meter).
	Routing  float64
	Reconfig float64
	// Adds and Removals count matching edges changed since the start.
	Adds     int
	Removals int
}

// Total returns the cumulative total cost.
func (c Counters) Total() float64 { return c.Routing + c.Reconfig }

// Incremental drives one algorithm instance request by request,
// accumulating cumulative costs with the sequential cost meter's exact
// operation order. The zero value is not usable; call Init (or
// NewIncremental). Incremental is a plain value — embedding it costs no
// allocation — and is not safe for concurrent use; callers that share one
// across goroutines (the engine's sessions) serialize externally.
type Incremental struct {
	alg      core.Algorithm
	cs       core.CompiledServer // non-nil when alg has the dense path
	compiled bool
	alpha    float64
	tot      core.ShardStep
	served   int64
}

// NewIncremental allocates an Incremental over alg. Callers on an
// allocation budget embed the struct and call Init instead.
func NewIncremental(alg core.Algorithm, alpha float64) *Incremental {
	in := &Incremental{}
	in.Init(alg, alpha)
	return in
}

// Init binds the stepper to alg with reconfiguration cost alpha and
// clears the counters. The algorithm's own state is left untouched.
func (in *Incremental) Init(alg core.Algorithm, alpha float64) {
	in.alg = alg
	in.cs, in.compiled = alg.(core.CompiledServer)
	in.alpha = alpha
	in.tot = core.ShardStep{}
	in.served = 0
}

// Algorithm returns the driven instance.
func (in *Incremental) Algorithm() core.Algorithm { return in.alg }

// Alpha returns the reconfiguration cost the totals are folded under.
func (in *Incremental) Alpha() float64 { return in.alpha }

// Feed serves one compiled request and folds its cost into the totals.
func (in *Incremental) Feed(req trace.CompiledReq) core.Step {
	var st core.Step
	if in.compiled {
		st = in.cs.ServeCompiled(req)
	} else {
		st = in.alg.Serve(int(req.U), int(req.V))
	}
	in.tot.Add(st, in.alpha)
	in.served++
	return st
}

// FeedRaw serves one uncompiled request (endpoints in either order) and
// folds its cost into the totals: the materialized-replay twin of Feed.
func (in *Incremental) FeedRaw(u, v int) core.Step {
	st := in.alg.Serve(u, v)
	in.tot.Add(st, in.alpha)
	in.served++
	return st
}

// FeedChunk serves a chunk of compiled requests in order and reports how
// many matching edges the chunk added and removed. Cumulative totals
// advance exactly as len(reqs) Feed calls would (the dense-path branch is
// hoisted out of the loop; the fold order per request is identical).
func (in *Incremental) FeedChunk(reqs []trace.CompiledReq) (adds, removals int) {
	beforeAdds, beforeRemovals := in.tot.Adds, in.tot.Removals
	if in.compiled {
		for _, req := range reqs {
			in.tot.Add(in.cs.ServeCompiled(req), in.alpha)
		}
	} else {
		for _, req := range reqs {
			in.tot.Add(in.alg.Serve(int(req.U), int(req.V)), in.alpha)
		}
	}
	in.served += int64(len(reqs))
	return in.tot.Adds - beforeAdds, in.tot.Removals - beforeRemovals
}

// Counters snapshots the cumulative totals.
func (in *Incremental) Counters() Counters {
	return Counters{
		Served:   in.served,
		Routing:  in.tot.Routing,
		Reconfig: in.tot.Reconfig,
		Adds:     in.tot.Adds,
		Removals: in.tot.Removals,
	}
}

// MatchingSize returns the algorithm's current matching size.
func (in *Incremental) MatchingSize() int { return in.alg.MatchingSize() }

// Reset restores the algorithm to its initial state and zeroes the
// counters.
func (in *Incremental) Reset() {
	in.alg.Reset()
	in.tot = core.ShardStep{}
	in.served = 0
}
