package sim

import (
	"fmt"
	"math"
	"strings"
)

// ASCIIChart renders cumulative-cost curves as a fixed-size terminal line
// chart, one symbol per curve. It is a convenience for inspecting
// experiment shapes without leaving the terminal; CSV output feeds real
// plotting tools.
func ASCIIChart(title string, curves []Curve, width, height int, value func(Averaged, int) float64) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	symbols := []byte("*o+x#@%&$~")
	var maxY float64
	var maxX int
	for _, c := range curves {
		for i := range c.Avg.X {
			if y := value(c.Avg, i); y > maxY {
				maxY = y
			}
			if c.Avg.X[i] > maxX {
				maxX = c.Avg.X[i]
			}
		}
	}
	if maxY == 0 || maxX == 0 {
		return title + "\n(no data)\n"
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for ci, c := range curves {
		sym := symbols[ci%len(symbols)]
		for i := range c.Avg.X {
			x := int(math.Round(float64(c.Avg.X[i]) / float64(maxX) * float64(width-1)))
			yv := value(c.Avg, i)
			y := height - 1 - int(math.Round(yv/maxY*float64(height-1)))
			if y >= 0 && y < height && x >= 0 && x < width {
				grid[y][x] = sym
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  (y-max %.3e, x-max %d)\n", title, maxY, maxX)
	for _, row := range grid {
		sb.WriteString("|")
		sb.Write(row)
		sb.WriteString("\n")
	}
	sb.WriteString("+" + strings.Repeat("-", width) + "\n")
	for ci, c := range curves {
		fmt.Fprintf(&sb, "  %c %s(b=%d)\n", symbols[ci%len(symbols)], c.Alg, c.B)
	}
	return sb.String()
}
