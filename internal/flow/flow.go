// Package flow is a flow-level network simulator that turns the paper's
// cost model into application-visible performance. The paper's routing
// cost is a "bandwidth tax" argument (§1.1): every extra hop consumes
// fabric capacity, and analytical results relate throughput inversely to
// route length. This package makes that concrete: requests become flows
// with sizes and arrival times; flows over the static fabric occupy every
// link of their shortest path (store-and-forward, per-link FIFO queueing),
// while flows over matching edges use a dedicated optical circuit. The
// output is the flow-completion-time (FCT) distribution — the quantity
// datacenter operators actually feel.
package flow

import (
	"fmt"
	"sort"

	"obm/internal/core"
	"obm/internal/graph"
	"obm/internal/stats"
	"obm/internal/trace"
)

// Config parameterizes the flow simulation.
type Config struct {
	// LinkCapacity is the service rate of every static-fabric link
	// (bytes per time unit).
	LinkCapacity float64
	// OpticalCapacity is the service rate of a reconfigurable circuit.
	OpticalCapacity float64
	// MeanFlowSize is the mean of the (exponential) flow-size
	// distribution, in bytes.
	MeanFlowSize float64
	// ArrivalRate is the mean number of flow arrivals per time unit
	// (Poisson process).
	ArrivalRate float64
	// Seed drives size and arrival randomness.
	Seed uint64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.LinkCapacity <= 0:
		return fmt.Errorf("flow: LinkCapacity must be positive")
	case c.OpticalCapacity <= 0:
		return fmt.Errorf("flow: OpticalCapacity must be positive")
	case c.MeanFlowSize <= 0:
		return fmt.Errorf("flow: MeanFlowSize must be positive")
	case c.ArrivalRate <= 0:
		return fmt.Errorf("flow: ArrivalRate must be positive")
	}
	return nil
}

// Result summarizes a simulation.
type Result struct {
	FCTs         []float64 // per-flow completion times, request order
	MeanFCT      float64
	P50FCT       float64
	P99FCT       float64
	OpticalShare float64 // fraction of flows served on circuits
	// MakeSpan is the time the last flow finished.
	MakeSpan float64
}

// Router decides, per flow, whether the pair rides a circuit. It is
// consulted before the flow is placed and may mutate algorithm state
// (e.g. by serving the request on an online algorithm).
type Router func(i int, u, v int) bool

// Simulate replays tr as a flow arrival process. route(i, u, v) reports
// whether flow i between racks u and v takes a circuit; otherwise it is
// store-and-forwarded along the static shortest path, queueing FIFO at
// every link (full-duplex: each direction of a link has its own queue).
func Simulate(top *graph.Topology, tr *trace.Trace, cfg Config, route Router) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := tr.Validate(); err != nil {
		return Result{}, err
	}
	if top.NumRacks() < tr.NumRacks {
		return Result{}, fmt.Errorf("flow: topology has %d racks, trace needs %d",
			top.NumRacks(), tr.NumRacks)
	}
	oracle := top.Paths()
	rng := stats.NewRand(cfg.Seed)
	// Directed-link FIFO availability times.
	nextFree := make(map[[2]int]float64)
	// Per-circuit availability (unordered rack pair).
	circuitFree := make(map[trace.PairKey]float64)

	res := Result{FCTs: make([]float64, tr.Len())}
	now := 0.0
	optical := 0
	for i, req := range tr.Reqs {
		now += rng.ExpFloat64() / cfg.ArrivalRate
		size := rng.ExpFloat64() * cfg.MeanFlowSize
		u, v := int(req.Src), int(req.Dst)
		var finish float64
		if route(i, u, v) {
			optical++
			k := trace.MakePairKey(u, v)
			start := now
			if t := circuitFree[k]; t > start {
				start = t
			}
			finish = start + size/cfg.OpticalCapacity
			circuitFree[k] = finish
		} else {
			t := now
			oracle.VisitPathEdges(u, v, func(a, b int) {
				link := [2]int{a, b}
				start := t
				if nf := nextFree[link]; nf > start {
					start = nf
				}
				done := start + size/cfg.LinkCapacity
				nextFree[link] = done
				t = done
			})
			finish = t
		}
		res.FCTs[i] = finish - now
		if finish > res.MakeSpan {
			res.MakeSpan = finish
		}
	}
	if tr.Len() > 0 {
		res.OpticalShare = float64(optical) / float64(tr.Len())
		res.MeanFCT = stats.Mean(res.FCTs)
		sorted := append([]float64(nil), res.FCTs...)
		sort.Float64s(sorted)
		res.P50FCT = sorted[len(sorted)/2]
		res.P99FCT = sorted[min(len(sorted)-1, len(sorted)*99/100)]
	}
	return res, nil
}

// SimulateWithAlgorithm drives an online b-matching algorithm in lock-step
// with the flow simulation: each flow is routed on a circuit iff its pair
// is matched at arrival, and the request is then fed to the algorithm so
// the matching keeps adapting.
func SimulateWithAlgorithm(top *graph.Topology, tr *trace.Trace, cfg Config, alg core.Algorithm) (Result, error) {
	return Simulate(top, tr, cfg, func(i, u, v int) bool {
		matched := alg.Matched(u, v)
		alg.Serve(u, v)
		return matched
	})
}

// SimulateOblivious routes every flow over the static fabric.
func SimulateOblivious(top *graph.Topology, tr *trace.Trace, cfg Config) (Result, error) {
	return Simulate(top, tr, cfg, func(i, u, v int) bool { return false })
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
