package flow

import (
	"testing"

	"obm/internal/core"
	"obm/internal/graph"
	"obm/internal/trace"
)

func flowConfig() Config {
	return Config{
		LinkCapacity:    100,
		OpticalCapacity: 400,
		MeanFlowSize:    50,
		ArrivalRate:     2,
		Seed:            1,
	}
}

func TestConfigValidation(t *testing.T) {
	good := flowConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*Config){
		func(c *Config) { c.LinkCapacity = 0 },
		func(c *Config) { c.OpticalCapacity = -1 },
		func(c *Config) { c.MeanFlowSize = 0 },
		func(c *Config) { c.ArrivalRate = 0 },
	} {
		c := flowConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %+v accepted", c)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	top := graph.FatTreeRacks(16)
	tr := trace.Uniform(16, 2000, 5)
	a, err := SimulateOblivious(top, tr, flowConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := SimulateOblivious(top, tr, flowConfig())
	if a.MeanFCT != b.MeanFCT || a.MakeSpan != b.MakeSpan {
		t.Fatal("same seed must reproduce the simulation")
	}
}

func TestCircuitsReduceFCTOnSkewedLoad(t *testing.T) {
	top := graph.FatTreeRacks(16)
	model := core.CostModel{Metric: top.Metric(), Alpha: 30}
	p := trace.FacebookPreset(trace.Database, 16, 3)
	p.Requests = 20000
	tr, _ := trace.FacebookStyle(p)
	cfg := flowConfig()

	obl, err := SimulateOblivious(top, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	alg, _ := core.NewRBMA(16, 3, model, 7)
	opt, err := SimulateWithAlgorithm(top, tr, cfg, alg)
	if err != nil {
		t.Fatal(err)
	}
	if opt.OpticalShare < 0.4 {
		t.Fatalf("R-BMA should serve a large share on circuits, got %.0f%%", 100*opt.OpticalShare)
	}
	if opt.MeanFCT >= obl.MeanFCT {
		t.Fatalf("circuits should cut mean FCT: %v vs oblivious %v", opt.MeanFCT, obl.MeanFCT)
	}
	if opt.P99FCT >= obl.P99FCT {
		t.Fatalf("circuits should cut tail FCT: %v vs oblivious %v", opt.P99FCT, obl.P99FCT)
	}
}

func TestFCTLowerBoundIsTransmissionDelay(t *testing.T) {
	// A flow can never finish faster than size/capacity over one hop.
	top := graph.FatTreeRacks(8)
	tr := trace.Uniform(8, 500, 9)
	cfg := flowConfig()
	res, err := SimulateOblivious(top, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, fct := range res.FCTs {
		if fct < 0 {
			t.Fatalf("flow %d has negative FCT %v", i, fct)
		}
	}
	if res.MeanFCT <= 0 || res.MakeSpan <= 0 {
		t.Fatal("degenerate summary stats")
	}
}

func TestQueueingGrowsWithLoad(t *testing.T) {
	// Same trace, higher arrival rate → more queueing → larger mean FCT.
	top := graph.Star(8)
	tr := trace.Uniform(8, 5000, 11)
	slow := flowConfig()
	slow.ArrivalRate = 0.5
	fast := flowConfig()
	fast.ArrivalRate = 50
	a, err := SimulateOblivious(top, tr, slow)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := SimulateOblivious(top, tr, fast)
	if b.MeanFCT <= a.MeanFCT {
		t.Fatalf("higher load should increase FCT: %v vs %v", b.MeanFCT, a.MeanFCT)
	}
}

func TestSimulateValidation(t *testing.T) {
	top := graph.Star(3)
	bad := &trace.Trace{NumRacks: 99, Reqs: []trace.Request{{Src: 0, Dst: 98}}}
	if _, err := SimulateOblivious(top, bad, flowConfig()); err == nil {
		t.Fatal("oversized trace accepted")
	}
	tr := trace.Uniform(3, 10, 1)
	c := flowConfig()
	c.LinkCapacity = 0
	if _, err := SimulateOblivious(top, tr, c); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestOpticalShareMatchesAlgorithmBehaviour(t *testing.T) {
	// A permutation workload with b=1 converges to full circuit coverage.
	top := graph.FatTreeRacks(8)
	model := core.CostModel{Metric: top.Metric(), Alpha: 10}
	tr := trace.Permutation(8, 10000, 3)
	alg, _ := core.NewRBMA(8, 1, model, 5)
	res, err := SimulateWithAlgorithm(top, tr, flowConfig(), alg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OpticalShare < 0.9 {
		t.Fatalf("permutation should be ~fully offloaded, got %.0f%%", 100*res.OpticalShare)
	}
}
