// Package work is the fleet-worker side of distributed grid execution:
// a Runner connects to an experiment-service coordinator (internal/serve,
// `experiments serve`), leases shards of submitted grids over HTTP, and
// drains them cooperatively with every other worker on the same
// coordinator.
//
// One shard lease is executed as an ordinary sharded run store (the PR 3
// mechanics): the worker rebuilds the shard's manifest from the lease
// (and refuses to run unless its spec hash reproduces the job id),
// executes the shard's job slice through sim.RunGridContext with the
// store's durability hooks, heartbeats the coordinator to keep the lease
// alive and stream progress, and finally uploads the store's jobs.jsonl,
// which the coordinator folds into the job's own store under
// exact-agreement conflict checks.
//
// Shard stores live under Options.Dir, keyed by (job, shard), so a
// worker that crashes or is cancelled mid-shard resumes its own partial
// log the next time it leases the same shard — and if a *different*
// worker re-runs the shard instead, determinism makes the duplicate
// upload verify bit-for-bit. Workers are therefore disposable: kill any
// of them at any time and the grid still merges to a summary
// byte-identical to a single-process run.
package work

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"obm/internal/obs"
	"obm/internal/report"
	"obm/internal/serve"
	"obm/internal/sim"
)

// Options configures a Runner.
type Options struct {
	// Coordinator is the base URL of the experiment service (required),
	// e.g. "http://10.0.0.5:8080".
	Coordinator string
	// Name identifies this worker in coordinator logs and lease state
	// (default "<hostname>-<pid>").
	Name string
	// Capacity is the number of shard leases executed concurrently
	// (default 1). Each shard internally parallelizes per GridWorkers.
	Capacity int
	// Dir is where shard run stores are kept while a shard executes
	// (default "work"). A store left behind by a kill is resumed when
	// this worker re-leases the same shard.
	Dir string
	// GridWorkers sizes the sim worker pool inside each shard run
	// (default GOMAXPROCS).
	GridWorkers int
	// ChunkSize is the streaming chunk size per grid worker (0 = default).
	ChunkSize int
	// Parallel, when > 1, replays multi-plane jobs (scenario Shards > 1)
	// with that many goroutines each (sim.GridOptions.Parallel). Outcomes
	// are byte-identical for every value, so a heterogeneous fleet mixing
	// different -parallel settings still agrees exactly on every job.
	Parallel int
	// CheckpointEvery, when > 0, checkpoints each in-flight grid job's
	// algorithm state to the shard store roughly every that many requests
	// (sim.GridOptions.CheckpointEvery), so a killed worker that re-leases
	// the same shard resumes inside partially replayed jobs instead of
	// restarting them. Checkpoints are local to this worker's shard store;
	// a different worker re-running the shard replays from the last
	// completed job, and determinism keeps the outcomes identical.
	CheckpointEvery int
	// Poll is how long to wait between lease attempts when the
	// coordinator has nothing to lease (default 2s).
	Poll time.Duration
	// HTTPClient overrides the HTTP client (default http.DefaultClient).
	HTTPClient *http.Client
	// Logf, when non-nil, receives one line per lease/shard state change.
	Logf func(format string, args ...any)
	// Registry, when non-nil, is where the worker registers its
	// obm_work_* and obm_grid_* metrics (nil gets a private registry).
	Registry *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		o.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if o.Capacity <= 0 {
		o.Capacity = 1
	}
	if o.Dir == "" {
		o.Dir = "work"
	}
	if o.Poll <= 0 {
		o.Poll = 2 * time.Second
	}
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Runner is a fleet worker. Create with New, drive with Run.
type Runner struct {
	opt Options
	reg *obs.Registry
	met workerMetrics
	sim *sim.Metrics // obm_grid_* instruments for leased-shard replays
}

// New validates opt and builds a Runner.
func New(opt Options) (*Runner, error) {
	if opt.Coordinator == "" {
		return nil, fmt.Errorf("work: Options.Coordinator is required")
	}
	opt = opt.withDefaults()
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	reg := opt.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Runner{opt: opt, reg: reg, met: newWorkerMetrics(reg), sim: sim.NewMetrics(reg)}, nil
}

// Run leases and executes shards until ctx is cancelled, then waits for
// in-flight shards to abort at their next chunk boundary (their local
// stores stay resumable) and returns the number of shards it completed
// and uploaded. Transient coordinator errors (connection refused during
// a restart, 5xx) are retried on the poll interval, so a fleet can start
// before its coordinator.
func (r *Runner) Run(ctx context.Context) (completed int, err error) {
	slots := make(chan struct{}, r.opt.Capacity)
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	r.opt.Logf("work: %s draining %s (capacity %d)", r.opt.Name, r.opt.Coordinator, r.opt.Capacity)
	for ctx.Err() == nil {
		select {
		case slots <- struct{}{}:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
		lease, lerr := r.acquire(ctx)
		if lerr != nil || lease == nil {
			<-slots
			if lerr != nil {
				r.opt.Logf("work: lease attempt: %v", lerr)
			}
			select {
			case <-time.After(r.opt.Poll):
			case <-ctx.Done():
			}
			continue
		}
		r.met.leases.Inc()
		wg.Add(1)
		go func(l serve.Lease) {
			defer wg.Done()
			defer func() { <-slots }()
			if r.runShard(ctx, l) {
				mu.Lock()
				completed++
				mu.Unlock()
			}
		}(*lease)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return completed, nil
}

// acquire asks the coordinator for one shard lease: it lists the jobs
// and tries to lease each candidate until one answers 200. A nil lease
// with nil error means there is nothing to drain right now.
func (r *Runner) acquire(ctx context.Context) (*serve.Lease, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.opt.Coordinator+"/api/v1/jobs", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.opt.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("work: listing jobs: HTTP %d", resp.StatusCode)
	}
	var list struct {
		Jobs []serve.Status `json:"jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("work: decoding job list: %w", err)
	}
	r.pruneStaleShardDirs(list.Jobs)
	for _, st := range list.Jobs {
		if st.State != serve.StateQueued && st.State != serve.StateRunning {
			continue
		}
		if st.Claim == "local" {
			continue // the coordinator's own pool owns this grid
		}
		lease, err := r.tryLease(ctx, st.ID)
		if err != nil {
			return nil, err
		}
		if lease != nil {
			return lease, nil
		}
	}
	return nil, nil
}

// tryLease POSTs one lease request; nil without error on 204/409-class
// answers (nothing to lease on that job).
func (r *Runner) tryLease(ctx context.Context, jobID string) (*serve.Lease, error) {
	body, _ := json.Marshal(map[string]string{"worker": r.opt.Name})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		r.opt.Coordinator+"/api/v1/jobs/"+jobID+"/lease", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.opt.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var l serve.Lease
		if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
			return nil, fmt.Errorf("work: decoding lease: %w", err)
		}
		return &l, nil
	case http.StatusNoContent, http.StatusConflict, http.StatusServiceUnavailable, http.StatusNotFound:
		return nil, nil
	default:
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("work: lease %s: HTTP %d: %s", jobID[:12], resp.StatusCode, blob)
	}
}

// shardDir names the local store for (job, shard) — stable across
// restarts, so a re-leased shard resumes this worker's own partial log.
func (r *Runner) shardDir(l serve.Lease) string {
	return filepath.Join(r.opt.Dir, fmt.Sprintf("%.16s-shard%d", l.JobID, l.Shard))
}

// pruneStaleShardDirs removes leftover shard stores whose job is done:
// an abandoned or lease-lost shard keeps its local log for a possible
// resume, but once the grid finished elsewhere that resume can never be
// asked for, and without pruning a long-lived worker's Dir grows
// without bound. Failed jobs keep their dirs — a resubmission re-leases
// their shards and the partial logs are a head start.
func (r *Runner) pruneStaleShardDirs(jobs []serve.Status) {
	entries, err := os.ReadDir(r.opt.Dir)
	if err != nil {
		return
	}
	done := make(map[string]bool, len(jobs))
	for _, st := range jobs {
		if st.State == serve.StateDone && len(st.ID) >= 16 {
			done[st.ID[:16]] = true
		}
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() || len(name) < 17 {
			continue
		}
		if prefix, rest, ok := strings.Cut(name, "-shard"); ok && rest != "" && done[prefix] {
			os.RemoveAll(filepath.Join(r.opt.Dir, name))
			r.opt.Logf("work: pruned stale shard store %s (job finished)", name)
		}
	}
}

// openShardStore creates (or resumes) the local run store for a lease,
// verifying that the lease's manifest reproduces the job id — a worker
// must never burn CPU on a grid whose identity it cannot prove.
func (r *Runner) openShardStore(l serve.Lease) (*report.Store, error) {
	m, err := report.NewManifest(l.Name, l.Specs, l.CurvePoints, report.Shard{Index: l.Shard, Count: l.Shards})
	if err != nil {
		return nil, err
	}
	if m.SpecHash != l.JobID {
		return nil, fmt.Errorf("work: lease for job %.12s carries specs hashing to %.12s — refusing to run", l.JobID, m.SpecHash)
	}
	dir := r.shardDir(l)
	if report.Exists(dir) {
		st, err := report.Open(dir)
		if err == nil {
			got := st.Manifest()
			if got.SpecHash != l.JobID || got.Shard.Index != l.Shard || got.Shard.Count != l.Shards {
				st.Close()
				return nil, fmt.Errorf("work: %s holds a different shard (%.12s %s) than the lease (%.12s %d/%d)",
					dir, got.SpecHash, got.Shard, l.JobID, l.Shard, l.Shards)
			}
			if st.Len() > 0 {
				r.opt.Logf("work: %s resuming shard %d of job %.12s (%d jobs already recorded)",
					r.opt.Name, l.Shard, l.JobID, st.Len())
			}
			return st, nil
		}
		return nil, err
	}
	return report.Create(dir, m)
}

// runShard executes one lease end to end; true means the shard's log was
// uploaded after a clean run. A cancelled shard (ctx or lease lost) is
// abandoned with its store intact; a shard whose grid failed uploads its
// partial log with the failure message so the coordinator requeues it
// without waiting for the TTL.
func (r *Runner) runShard(ctx context.Context, l serve.Lease) bool {
	store, err := r.openShardStore(l)
	if err != nil {
		r.opt.Logf("work: shard %d of job %.12s: %v", l.Shard, l.JobID, err)
		return false
	}
	logPath := store.LogPath()

	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var leaseLost atomic.Bool
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		r.heartbeatLoop(shardCtx, l, store, cancel, &leaseLost)
	}()

	_, runErr := store.RunContext(shardCtx, sim.GridOptions{
		Workers:         r.opt.GridWorkers,
		ChunkSize:       r.opt.ChunkSize,
		Parallel:        r.opt.Parallel,
		CheckpointEvery: r.opt.CheckpointEvery,
		Metrics:         r.sim,
	})
	if serr := store.Sync(); runErr == nil && serr != nil {
		runErr = serr
	}
	cancel()
	<-hbDone
	store.Close()

	switch {
	case leaseLost.Load():
		// The lease was requeued under us: another worker owns the shard
		// now. Keep the local log (a future lease of the same shard
		// resumes it) and upload nothing — the new owner's run is
		// authoritative, and if both upload, determinism makes the
		// duplicate verify.
		r.opt.Logf("work: %s lost the lease on shard %d of job %.12s — aborted at a chunk boundary", r.opt.Name, l.Shard, l.JobID)
		return false
	case runErr != nil && ctx.Err() != nil:
		// Worker shutdown: hand the partial log to the coordinator (the
		// upload is detached from the shutdown cancellation) so it absorbs
		// the completed jobs and requeues the shard immediately instead of
		// waiting out the lease TTL — whoever re-leases the shard resumes
		// past the absorbed jobs. The local store stays too: if *this*
		// worker re-leases it, it also resumes its own mid-job checkpoints.
		if uerr := r.upload(ctx, l, logPath, "worker shutdown"); uerr != nil {
			r.met.uploadErrors.Inc()
			r.opt.Logf("work: handing off shard %d of job %.12s: %v (local log kept)", l.Shard, l.JobID, uerr)
		} else {
			r.met.handoffs.Inc()
			r.opt.Logf("work: %s handed off shard %d of job %.12s (%d jobs absorbed; shard requeued)",
				r.opt.Name, l.Shard, l.JobID, store.Len())
		}
		return false
	}
	failMsg := ""
	if runErr != nil {
		failMsg = runErr.Error()
	}
	if err := r.upload(ctx, l, logPath, failMsg); err != nil {
		r.met.uploadErrors.Inc()
		r.opt.Logf("work: uploading shard %d of job %.12s: %v (local log kept)", l.Shard, l.JobID, err)
		return false
	}
	if failMsg != "" {
		r.opt.Logf("work: %s reported shard %d of job %.12s failed: %s", r.opt.Name, l.Shard, l.JobID, failMsg)
		return false
	}
	// The coordinator holds everything durable now; the local store is
	// scratch and can go.
	os.RemoveAll(r.shardDir(l))
	r.met.shardsCompleted.Inc()
	r.opt.Logf("work: %s completed shard %d/%d of job %.12s (%d grid jobs)", r.opt.Name, l.Shard, l.Shards, l.JobID, l.Jobs)
	return true
}

// heartbeatLoop renews the lease on a third of its TTL, reporting the
// shard store's persisted-job count as progress. A 409 means the lease
// was requeued under us — flag it and cancel the run; its next chunk
// boundary aborts.
func (r *Runner) heartbeatLoop(ctx context.Context, l serve.Lease, store *report.Store, cancel context.CancelFunc, leaseLost *atomic.Bool) {
	interval := time.Duration(l.TTLMS) * time.Millisecond / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		body, _ := json.Marshal(map[string]any{"token": l.Token, "done": store.Len()})
		url := fmt.Sprintf("%s/api/v1/jobs/%s/shards/%d/heartbeat", r.opt.Coordinator, l.JobID, l.Shard)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := r.opt.HTTPClient.Do(req)
		if err != nil {
			// A coordinator blip is survivable as long as one heartbeat
			// lands inside the TTL; keep trying until the lease verdict.
			r.opt.Logf("work: heartbeat for shard %d of job %.12s: %v", l.Shard, l.JobID, err)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusConflict {
			r.met.leaseLost.Inc()
			leaseLost.Store(true)
			cancel()
			return
		}
		if resp.StatusCode == http.StatusOK {
			r.met.heartbeats.Inc()
		}
	}
}

// uploadAttempts bounds the complete-endpoint retry loop; with the
// doubling backoff below (200ms base) the last attempt lands ~12s after
// the first — comfortably past a coordinator restart.
const uploadAttempts = 6

// upload POSTs the shard's jobs.jsonl to the complete endpoint. The
// request is detached from the worker's shutdown cancellation (with its
// own timeout): the shard's compute is already paid for, so a worker
// told to stop right as a shard finishes still delivers it instead of
// abandoning a completed log.
//
// Transport errors and 5xx answers retry with doubling backoff — that is
// exactly what a coordinator mid-restart looks like (connection refused,
// then 503, then a recovered lease table). Client-class answers are
// final: a coordinator that *judged* the upload and rejected it will not
// change its mind on a resend.
func (r *Runner) upload(ctx context.Context, l serve.Lease, logPath, failMsg string) error {
	uploadCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Minute)
	defer cancel()
	blob, err := os.ReadFile(logPath)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	q := neturl.Values{"token": {l.Token}, "worker": {r.opt.Name}}
	if failMsg != "" {
		q.Set("failed", failMsg)
	}
	url := fmt.Sprintf("%s/api/v1/jobs/%s/shards/%d/complete?%s", r.opt.Coordinator, l.JobID, l.Shard, q.Encode())

	backoff := 200 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt < uploadAttempts; attempt++ {
		if attempt > 0 {
			r.met.uploadRetries.Inc()
			r.opt.Logf("work: retrying upload of shard %d of job %.12s in %v: %v", l.Shard, l.JobID, backoff, lastErr)
			select {
			case <-uploadCtx.Done():
				return lastErr
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		req, err := http.NewRequestWithContext(uploadCtx, http.MethodPost, url, bytes.NewReader(blob))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		resp, err := r.opt.HTTPClient.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		lastErr = fmt.Errorf("work: complete: HTTP %d: %s", resp.StatusCode, msg)
		if resp.StatusCode < http.StatusInternalServerError {
			return lastErr
		}
	}
	return lastErr
}
