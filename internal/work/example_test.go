package work_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"obm/internal/serve"
	"obm/internal/sim"
	"obm/internal/work"
)

// ExampleRunner wires a complete in-process fleet: a coordinator-only
// experiment service, one worker draining its shard leases, and a
// submitted grid that only finishes through the lease protocol — the
// same wiring `experiments serve -workers 0` plus `experiments worker`
// gives you as separate processes.
func ExampleRunner() {
	root, err := os.MkdirTemp("", "fleet-root")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(root)
	workdir, err := os.MkdirTemp("", "fleet-work")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(workdir)

	// A pure coordinator: Workers < 0 disables local execution, so every
	// grid job must flow through a shard lease.
	coord, err := serve.New(serve.Options{StoreRoot: root, Workers: -1, ShardSize: 2})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		coord.Shutdown(ctx)
	}()

	st, err := coord.Submit([]sim.ScenarioSpec{{
		Name: "fleet-demo", Family: "uniform",
		Racks: 8, Requests: 2000, Seed: 1,
		Bs: []int{2}, Reps: 4, Algs: []string{"r-bma"},
	}})
	if err != nil {
		panic(err)
	}
	fmt.Println("submitted:", st.Total, "grid jobs, state", st.State)

	runner, err := work.New(work.Options{
		Coordinator: ts.URL,
		Name:        "example-worker",
		Dir:         workdir,
		Poll:        10 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	ctx, stopWorker := context.WithCancel(context.Background())
	done := make(chan int, 1)
	go func() {
		n, _ := runner.Run(ctx)
		done <- n
	}()

	for st.State != serve.StateDone && st.State != serve.StateFailed {
		time.Sleep(5 * time.Millisecond)
		st, _ = coord.Job(st.ID)
	}
	stopWorker()
	shards := <-done
	fmt.Println("drained by the fleet:", st.State, st.Done, "of", st.Total, "in", shards, "shard leases")
	// Output:
	// submitted: 4 grid jobs, state queued
	// drained by the fleet: done 4 of 4 in 2 shard leases
}
