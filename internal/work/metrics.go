package work

import (
	"obm/internal/obs"
)

// workerMetrics are the fleet-worker obm_work_* series. The shard replay
// itself reports through the shared obm_grid_* instruments (sim.Metrics)
// wired into every leased shard's GridOptions.
type workerMetrics struct {
	leases          *obs.Counter // shard leases acquired from the coordinator
	shardsCompleted *obs.Counter // shards executed and uploaded cleanly
	handoffs        *obs.Counter // partial logs handed off at shutdown
	heartbeats      *obs.Counter // lease renewals acknowledged (HTTP 200)
	leaseLost       *obs.Counter // leases revoked under us (heartbeat 409)
	uploadErrors    *obs.Counter // failed log uploads (local log kept)
	uploadRetries   *obs.Counter // upload attempts retried (coordinator blip/restart)
}

func newWorkerMetrics(r *obs.Registry) workerMetrics {
	return workerMetrics{
		leases:          r.Counter("obm_work_leases_total", "Shard leases acquired from the coordinator."),
		shardsCompleted: r.Counter("obm_work_shards_completed_total", "Shards executed and uploaded cleanly."),
		handoffs:        r.Counter("obm_work_handoffs_total", "Partial shard logs handed off to the coordinator at shutdown."),
		heartbeats:      r.Counter("obm_work_heartbeats_total", "Lease renewals acknowledged by the coordinator."),
		leaseLost:       r.Counter("obm_work_lease_lost_total", "Leases revoked under this worker (heartbeat answered 409)."),
		uploadErrors:    r.Counter("obm_work_upload_errors_total", "Failed shard-log uploads (the local log is kept)."),
		uploadRetries:   r.Counter("obm_work_upload_retries_total", "Shard-log upload attempts retried after a transport error or 5xx (coordinator blip or restart)."),
	}
}

// Registry returns the worker's metrics registry, for callers that want
// to expose it over HTTP (`experiments worker -metrics`).
func (r *Runner) Registry() *obs.Registry { return r.reg }
