package work

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"obm/internal/report"
	"obm/internal/serve"
	"obm/internal/sim"
)

// paperSpecs covers the paper evaluation's four trace families (§3.1):
// Facebook-style, Microsoft-style, uniform, phase-shift. Request counts
// are chosen so a shard takes long enough that killing a worker lands
// mid-shard, while the whole test stays in seconds.
func paperSpecs() []sim.ScenarioSpec {
	return []sim.ScenarioSpec{
		{Name: "fb", Family: "facebook-database", Racks: 12, Requests: 200000, Seed: 1, Bs: []int{2, 3}, Reps: 2, Algs: []string{"r-bma", "bma"}},
		{Name: "ms", Family: "microsoft", Racks: 12, Requests: 200000, Seed: 2, Bs: []int{2, 3}, Reps: 2, Algs: []string{"r-bma", "bma"}},
		{Name: "uni", Family: "uniform", Racks: 12, Requests: 200000, Seed: 3, Bs: []int{2, 3}, Reps: 2, Algs: []string{"r-bma", "bma"}},
		{Name: "ps", Family: "phase-shift", Racks: 12, Requests: 200000, Seed: 4, Bs: []int{2, 3}, Reps: 2, Algs: []string{"r-bma", "bma"}},
	}
}

const acceptCurvePoints = 3

// directSummary renders the reference summary.csv of an uninterrupted
// single-process run of specs.
func directSummary(t *testing.T, specs []sim.ScenarioSpec) []byte {
	t.Helper()
	m, err := report.NewManifest("direct", specs, acceptCurvePoints, report.Shard{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := report.Create(filepath.Join(t.TempDir(), "direct"), m)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Run(sim.GridOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	csvPath, _, err := st.Render()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		json.NewDecoder(resp.Body).Decode(v)
	}
	return resp.StatusCode
}

// newWorker builds a Runner against the test coordinator with its own
// workdir and a fast poll.
func newWorker(t *testing.T, coordURL, name string, capacity int, client *http.Client) *Runner {
	t.Helper()
	r, err := New(Options{
		Coordinator: coordURL,
		Name:        name,
		Capacity:    capacity,
		Dir:         filepath.Join(t.TempDir(), name),
		GridWorkers: 1,
		Poll:        25 * time.Millisecond,
		HTTPClient:  client,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

type roundTripperFunc func(*http.Request) (*http.Response, error)

func (f roundTripperFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// TestFleetDrainWithKilledWorker is the distributed acceptance test: a
// grid over the four paper trace families is submitted to a
// coordinator-only service and drained by three workers, one of which is
// killed mid-shard. The killed worker's lease expires, its shard is
// requeued and re-executed, and the final summary.csv must be
// byte-identical to a direct single-process sim.RunGrid of the same
// specs — worker count, crashes and duplicate executions are invisible
// in the results.
func TestFleetDrainWithKilledWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second distributed drain; covered by the full test job")
	}
	specs := paperSpecs()
	s, err := serve.New(serve.Options{
		StoreRoot:   t.TempDir(),
		Workers:     -1, // coordinator-only: every grid job flows through leases
		ShardSize:   3,
		LeaseTTL:    1 * time.Second,
		CurvePoints: acceptCurvePoints,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	blob, err := json.Marshal(specs)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: HTTP %d, %+v", resp.StatusCode, st)
	}
	t.Logf("submitted job %.12s (%d grid jobs)", st.ID, st.Total)

	// The victim drains alone (capacity 1 → exactly one shard in
	// flight) until the coordinator confirms it holds a lease; then it
	// is killed mid-shard. Its network drops completed-shard uploads, so
	// however the kill interleaves with the shard's compute, the shard
	// can only finish through lease expiry and a re-run — the dead-worker
	// path the test exists to exercise.
	victimCtx, killVictim := context.WithCancel(context.Background())
	defer killVictim()
	victimClient := &http.Client{Transport: roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		if strings.HasSuffix(r.URL.Path, "/complete") {
			return nil, errors.New("victim network severed before upload")
		}
		return http.DefaultTransport.RoundTrip(r)
	})}
	victim := newWorker(t, ts.URL, "victim", 1, victimClient)
	victimDone := make(chan int, 1)
	go func() {
		n, _ := victim.Run(victimCtx)
		victimDone <- n
	}()

	type shardList struct {
		Shards []serve.ShardStatus `json:"shards"`
	}
	deadline := time.Now().Add(30 * time.Second)
	victimShard := -1
	for victimShard < 0 {
		var sl shardList
		getJSON(t, ts.URL+"/api/v1/jobs/"+st.ID+"/shards", &sl)
		for _, sh := range sl.Shards {
			if sh.State == "leased" {
				victimShard = sh.Index
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never leased a shard")
		}
		time.Sleep(500 * time.Microsecond)
	}
	killVictim()
	killed := <-victimDone
	t.Logf("victim killed mid-shard %d (had completed %d shards)", victimShard, killed)

	// Two survivors finish the drain, re-leasing the victim's shard once
	// its TTL expires.
	fleetCtx, stopFleet := context.WithCancel(context.Background())
	defer stopFleet()
	fleetDone := make(chan int, 2)
	for _, name := range []string{"w1", "w2"} {
		w := newWorker(t, ts.URL, name, 2, nil)
		go func() {
			n, _ := w.Run(fleetCtx)
			fleetDone <- n
		}()
	}

	deadline = time.Now().Add(120 * time.Second)
	for {
		var cur serve.Status
		getJSON(t, ts.URL+"/api/v1/jobs/"+st.ID, &cur)
		if cur.State == serve.StateDone {
			break
		}
		if cur.State == serve.StateFailed {
			t.Fatalf("job failed: %s", cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never finished the job (at %d/%d)", cur.Done, cur.Total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stopFleet()
	done1, done2 := <-fleetDone, <-fleetDone
	t.Logf("survivors completed %d + %d shards", done1, done2)

	var sl shardList
	getJSON(t, ts.URL+"/api/v1/jobs/"+st.ID+"/shards", &sl)
	requeued := 0
	for _, sh := range sl.Shards {
		if sh.State != "done" {
			t.Errorf("shard %d finished in state %s", sh.Index, sh.State)
		}
		if sh.Attempts > 1 {
			requeued++
		}
	}
	t.Logf("%d of %d shards needed more than one lease", requeued, len(sl.Shards))
	if requeued == 0 {
		t.Error("no shard was requeued: the kill did not exercise the lease-expiry path")
	}

	// The acceptance bar: byte-identity with a direct single-process run.
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/summary.csv")
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	got.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("summary.csv: HTTP %d", resp.StatusCode)
	}
	want := directSummary(t, specs)
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("fleet summary.csv differs from direct RunGrid:\n--- fleet\n%s--- direct\n%s", got.Bytes(), want)
	}
}

// TestUploadRetriesAcrossCoordinatorBlip: the complete upload survives a
// coordinator that is briefly unreachable or answering 5xx (the shape of
// a restart), retries with backoff, and treats client-class rejections
// as final.
func TestUploadRetriesAcrossCoordinatorBlip(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "jobs.jsonl")
	if err := os.WriteFile(logPath, []byte("{\"k\":1}\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var calls, status int
	var lastBody []byte
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		lastBody, _ = io.ReadAll(r.Body)
		if calls < 3 {
			w.WriteHeader(status)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	newRunner := func(transport http.RoundTripper) *Runner {
		r, err := New(Options{
			Coordinator: ts.URL,
			Name:        "retrier",
			Dir:         t.TempDir(),
			HTTPClient:  &http.Client{Transport: transport},
			Logf:        t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	l := serve.Lease{JobID: "job", Shard: 0, Token: "tok"}

	// 5xx answers retry until the coordinator recovers.
	calls, status = 0, http.StatusServiceUnavailable
	r := newRunner(nil)
	if err := r.upload(context.Background(), l, logPath, ""); err != nil {
		t.Fatalf("upload through 503s: %v", err)
	}
	if calls != 3 {
		t.Fatalf("upload took %d attempts, want 3", calls)
	}
	if got := r.met.uploadRetries.Value(); got != 2 {
		t.Fatalf("uploadRetries = %d, want 2", got)
	}
	if !bytes.Equal(lastBody, []byte("{\"k\":1}\n")) {
		t.Fatalf("retried upload sent body %q: the reader was not rewound", lastBody)
	}

	// Transport errors (connection refused mid-restart) retry too.
	calls, status = 0, http.StatusOK
	var transportCalls int
	r = newRunner(roundTripperFunc(func(req *http.Request) (*http.Response, error) {
		transportCalls++
		if transportCalls < 3 {
			return nil, errors.New("connection refused")
		}
		return http.DefaultTransport.RoundTrip(req)
	}))
	if err := r.upload(context.Background(), l, logPath, ""); err != nil {
		t.Fatalf("upload through transport errors: %v", err)
	}
	if transportCalls != 3 || calls != 1 {
		t.Fatalf("transport attempts %d (want 3), server calls %d (want 1)", transportCalls, calls)
	}

	// A 4xx verdict is final: the coordinator judged the upload.
	calls, status = 0, http.StatusConflict
	r = newRunner(nil)
	if err := r.upload(context.Background(), l, logPath, ""); err == nil {
		t.Fatal("409 upload reported success")
	}
	if calls != 1 {
		t.Fatalf("409 upload took %d attempts, want 1 (client errors are final)", calls)
	}
	if got := r.met.uploadRetries.Value(); got != 0 {
		t.Fatalf("uploadRetries = %d after final 409, want 0", got)
	}
}

// TestWorkerResumesOwnShardStore: a worker that re-leases a shard it was
// killed on resumes its own partial log instead of starting over.
func TestWorkerResumesOwnShardStore(t *testing.T) {
	specs := []sim.ScenarioSpec{{
		Name: "resume-uni", Family: "uniform",
		Racks: 8, Requests: 2000, Seed: 9,
		Bs: []int{2}, Reps: 4,
		Algs: []string{"oblivious"},
	}}
	m, err := report.NewManifest("experiments serve", specs, 0, report.Shard{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Options{
		Coordinator: "http://unused.invalid",
		Name:        "resumer",
		Dir:         t.TempDir(),
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	l := serve.Lease{
		JobID: m.SpecHash, Shard: 0, Shards: 2, Token: "tok",
		TTLMS: 60000, Name: m.Name, CurvePoints: 0, Specs: m.Specs,
	}
	st, err := r.openShardStore(l)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a partial run: record one job, then "die".
	job := sim.GridJob{Scenario: "resume-uni", Alg: "oblivious", B: 0, Rep: 0}
	if err := st.Append(job, sim.JobOutcome{Routing: 42}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	re, err := r.openShardStore(l)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Fatalf("re-leased store lost the partial log: %d records", re.Len())
	}
	if _, ok := re.Lookup(job); !ok {
		t.Fatal("recorded job missing after resume")
	}

	// A lease whose specs do not hash to its job id is refused.
	bad := l
	bad.JobID = "0000000000000000000000000000000000000000000000000000000000000000"
	if _, err := r.openShardStore(bad); err == nil {
		t.Fatal("hash-mismatched lease accepted")
	}
}
