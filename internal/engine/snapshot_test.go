package engine

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"obm/internal/graph"
	"obm/internal/sim"
	"obm/internal/trace"
)

// offlineFinal resets st and replays its full request sequence through an
// identically-configured algorithm offline, returning the final cumulative
// (routing, reconfig).
func offlineFinal(t *testing.T, cfg SessionConfig, st trace.Stream, n int) [2]float64 {
	t.Helper()
	cfg = cfg.withDefaults()
	alg, err := cfg.spec().BuildAlgorithm(cfg.Alg, cfg.B, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	st.Reset()
	src, err := trace.NewSource(st, graph.FatTreeRacks(cfg.Racks).Metric().Dist)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunSource(alg, src, cfg.Alpha, []int{n}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return [2]float64{res.Series.Routing[0], res.Series.Reconfig[0]}
}

// streamRange streams reqs[from:to] to session id over TCP and returns the
// final batch result. It asserts the hello reports from requests already
// served — the re-attach contract a resumed loadgen relies on.
func streamRange(t *testing.T, e *Engine, addr, id string, reqs []trace.Request, from, to, batch int) *BatchResult {
	t.Helper()
	c, info, err := DialIngest(addr, id, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if int(info.Served) != from {
		t.Fatalf("hello reports %d served, want %d", info.Served, from)
	}
	if from >= to {
		// Nothing to send: read the counters off the session instead.
		s, ok := e.Session(id)
		if !ok {
			t.Fatalf("session %q gone", id)
		}
		status := s.Status()
		return &BatchResult{
			Served:   uint64(status.Served),
			Routing:  status.Routing,
			Reconfig: status.Reconfig,
		}
	}
	for start := from; start < to; start += batch {
		end := start + batch
		if end > to {
			end = to
		}
		if _, err := c.Send(reqs[start:end]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Drain()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEngineSnapshotRestoreTCP is the end-to-end leg of the snapshot
// equivalence suite: a session fed k requests over the binary TCP protocol
// is snapshotted through the HTTP route, deleted, restored through the
// HTTP route, fed the tail over a fresh TCP connection — and its final
// cumulative costs must be bit-identical to an offline replay of the full
// sequence. Runs for a single-plane and a sharded session.
func TestEngineSnapshotRestoreTCP(t *testing.T) {
	const total, snapAt = 12000, 7000
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			e := New(Options{})
			addr := startIngest(t, e)
			ts := httptest.NewServer(e.Handler())
			defer ts.Close()

			cfg := SessionConfig{ID: "live", Racks: 32, B: 4, Alg: "r-bma", Seed: 17, Shards: shards}
			if _, err := e.CreateSession(cfg); err != nil {
				t.Fatal(err)
			}
			st, err := trace.NewUniformStream(32, total, 21)
			if err != nil {
				t.Fatal(err)
			}
			reqs := trace.Collect(st).Reqs

			// Head of the stream, then snapshot over HTTP.
			streamRange(t, e, addr, "live", reqs, 0, snapAt, 512)
			resp, err := http.Post(ts.URL+"/api/v1/sessions/live/snapshot", "application/octet-stream", nil)
			if err != nil {
				t.Fatal(err)
			}
			var blob bytes.Buffer
			if _, err := blob.ReadFrom(resp.Body); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("snapshot: %d %s", resp.StatusCode, blob.String())
			}

			// Kill the session, restore it from the blob, stream the tail.
			if !e.DeleteSession("live") {
				t.Fatal("delete failed")
			}
			resp, err = http.Post(ts.URL+"/api/v1/sessions/restore", "application/octet-stream", bytes.NewReader(blob.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("restore: %d", resp.StatusCode)
			}
			final := streamRange(t, e, addr, "live", reqs, snapAt, total, 512)

			want := offlineFinal(t, cfg, st, total)
			if int(final.Served) != total {
				t.Fatalf("served = %d, want %d", final.Served, total)
			}
			if math.Float64bits(final.Routing) != math.Float64bits(want[0]) ||
				math.Float64bits(final.Reconfig) != math.Float64bits(want[1]) {
				t.Fatalf("restored session final (%v, %v) != offline (%v, %v)",
					final.Routing, final.Reconfig, want[0], want[1])
			}
		})
	}
}

// TestEngineSnapshotDuringBatches snapshots a session concurrently with a
// live binary stream (run under -race). Every snapshot must be a
// consistent cut: restoring it into a second engine and streaming the
// remaining requests must land on the same final costs as the offline
// replay of the full sequence.
func TestEngineSnapshotDuringBatches(t *testing.T) {
	const total, batch = 12000, 300
	e := New(Options{})
	addr := startIngest(t, e)
	cfg := SessionConfig{ID: "hot", Racks: 24, B: 4, Alg: "r-bma", Seed: 7}
	s, err := e.CreateSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.NewUniformStream(24, total, 13)
	if err != nil {
		t.Fatal(err)
	}
	reqs := trace.Collect(st).Reqs

	// Snapshot continuously while the stream runs.
	var (
		wg    sync.WaitGroup
		stop  = make(chan struct{})
		blobs [][]byte
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		lastServed := uint64(math.MaxUint64)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b bytes.Buffer
			if err := s.Snapshot(&b); err != nil {
				t.Errorf("snapshot during stream: %v", err)
				return
			}
			// Keep one blob per observed cut; snapshotting is much faster
			// than streaming, so an unfiltered loop would hoard thousands
			// of identical blobs.
			if served := uint64(s.Status().Served); served != lastServed {
				lastServed = served
				blobs = append(blobs, b.Bytes())
			}
		}
	}()
	streamRange(t, e, addr, "hot", reqs, 0, total, batch)
	close(stop)
	wg.Wait()

	if len(blobs) == 0 {
		t.Fatal("snapshotter captured no blobs")
	}
	want := offlineFinal(t, cfg, st, total)

	// Every cut must land on a batch boundary (Snapshot holds the session
	// lock, so it can never observe a half-applied batch)...
	restorer := New(Options{MaxSessions: len(blobs) + 1})
	raddr := startIngest(t, restorer)
	cuts := make([]int, len(blobs))
	for i, blob := range blobs {
		rs, err := restorer.RestoreSession(bytes.NewReader(blob), fmt.Sprintf("cut%d", i))
		if err != nil {
			t.Fatalf("blob %d: %v", i, err)
		}
		cuts[i] = int(rs.Status().Served)
		if cuts[i]%batch != 0 {
			t.Fatalf("blob %d: cut at %d served, not a batch boundary", i, cuts[i])
		}
	}
	// ...and a handful of cuts replay their tails end to end (replaying
	// every blob would be O(blobs × total) wire traffic).
	picks := map[int]bool{0: true, len(blobs) - 1: true, len(blobs) / 4: true, len(blobs) / 2: true, 3 * len(blobs) / 4: true}
	for i := range picks {
		final := streamRange(t, restorer, raddr, fmt.Sprintf("cut%d", i), reqs, cuts[i], total, 600)
		if math.Float64bits(final.Routing) != math.Float64bits(want[0]) ||
			math.Float64bits(final.Reconfig) != math.Float64bits(want[1]) {
			t.Fatalf("blob %d (cut at %d): final (%v, %v) != offline (%v, %v)",
				i, cuts[i], final.Routing, final.Reconfig, want[0], want[1])
		}
	}
}

// TestEngineRestoreIntoLiveServer pins restore's registry edge cases on a
// serving engine: a duplicate id is rejected, an ?id= override restores
// next to the live original, and the session cap applies.
func TestEngineRestoreIntoLiveServer(t *testing.T) {
	e := New(Options{MaxSessions: 2})
	addr := startIngest(t, e)
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	cfg := SessionConfig{ID: "orig", Racks: 16, B: 2, Alg: "r-bma", Seed: 1}
	if _, err := e.CreateSession(cfg); err != nil {
		t.Fatal(err)
	}
	st, err := trace.NewUniformStream(16, 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	reqs := trace.Collect(st).Reqs
	streamRange(t, e, addr, "orig", reqs, 0, 1000, 250)
	var blob bytes.Buffer
	s, _ := e.Session("orig")
	if err := s.Snapshot(&blob); err != nil {
		t.Fatal(err)
	}

	restore := func(q string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/api/v1/sessions/restore"+q, "application/octet-stream", bytes.NewReader(blob.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var body bytes.Buffer
		body.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, body.String()
	}

	// Same id as the live original: rejected, original untouched.
	if resp, body := restore(""); resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "already exists") {
		t.Fatalf("duplicate restore: %d %s", resp.StatusCode, body)
	}
	if got := s.Status().Served; got != 1000 {
		t.Fatalf("original served %d after rejected restore, want 1000", got)
	}

	// Renamed restore lands next to the original; both serve independently.
	if resp, body := restore("?id=fork"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("renamed restore: %d %s", resp.StatusCode, body)
	}
	a := streamRange(t, e, addr, "orig", reqs, 1000, 2000, 250)
	b := streamRange(t, e, addr, "fork", reqs, 1000, 2000, 500)
	if math.Float64bits(a.Routing) != math.Float64bits(b.Routing) ||
		math.Float64bits(a.Reconfig) != math.Float64bits(b.Reconfig) {
		t.Fatalf("fork diverged from original: (%v, %v) != (%v, %v)",
			b.Routing, b.Reconfig, a.Routing, a.Reconfig)
	}

	// Session cap: engine is now full.
	if resp, body := restore("?id=third"); resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "limit") {
		t.Fatalf("over-cap restore: %d %s", resp.StatusCode, body)
	}
}

// TestEngineDeleteDuringSnapshot races DeleteSession against Snapshot (run
// under -race): deletion must never corrupt an in-flight snapshot — every
// snapshot that succeeds must restore cleanly.
func TestEngineDeleteDuringSnapshot(t *testing.T) {
	for round := 0; round < 20; round++ {
		e := New(Options{})
		s, err := e.CreateSession(SessionConfig{ID: "doomed", Racks: 16, B: 2, Alg: "r-bma", Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		st, err := trace.NewUniformStream(16, 500, uint64(round))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range trace.Collect(st).Reqs {
			var res BatchResult
			if err := s.ServeOne(int(r.Src), int(r.Dst), &res); err != nil {
				t.Fatal(err)
			}
		}
		var blob bytes.Buffer
		var wg sync.WaitGroup
		wg.Add(2)
		serr := make(chan error, 1)
		go func() { defer wg.Done(); serr <- s.Snapshot(&blob) }()
		go func() { defer wg.Done(); e.DeleteSession("doomed") }()
		wg.Wait()
		if err := <-serr; err != nil {
			t.Fatalf("round %d: snapshot failed under delete: %v", round, err)
		}
		rs, err := e.RestoreSession(bytes.NewReader(blob.Bytes()), "")
		if err != nil {
			t.Fatalf("round %d: restoring the raced snapshot: %v", round, err)
		}
		if got := rs.Status().Served; got != 500 {
			t.Fatalf("round %d: restored served = %d, want 500", round, got)
		}
		if !e.DeleteSession("doomed") {
			t.Fatalf("round %d: restored session not registered", round)
		}
	}
}
