package engine

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// The engine's HTTP/JSON control plane:
//
//	GET    /healthz                       liveness + session count
//	GET    /metrics                       Prometheus text exposition
//	POST   /api/v1/sessions               create a session (SessionConfig JSON)
//	GET    /api/v1/sessions               all session statuses
//	GET    /api/v1/sessions/{id}          one session's status
//	DELETE /api/v1/sessions/{id}          drop a session
//	POST   /api/v1/sessions/{id}/serve    serve one request ({"u": 3, "v": 7})
//	GET    /api/v1/sessions/{id}/churn    per-batch matching-churn deltas as
//	                                      NDJSON (?after=seq cursors,
//	                                      ?follow=1 tails the live stream)
//	POST   /api/v1/sessions/{id}/snapshot serialize the session (octet-stream)
//	POST   /api/v1/sessions/restore       recreate a session from a snapshot
//	                                      body (?id= renames it)
//	/debug/pprof/...                      runtime profiles (CPU, heap, mutex)
//
// The serve route is the single-request operability path — correct but
// per-request JSON-priced; bulk traffic belongs on the binary ingest port.
// pprof rides on the status port (never the ingest port) so a live engine
// can be profiled under load.

// Handler returns the engine's control-plane handler.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", e.handleHealth)
	mux.Handle("GET /metrics", e.reg.Handler())
	mux.HandleFunc("POST /api/v1/sessions", e.handleCreate)
	mux.HandleFunc("GET /api/v1/sessions", e.handleList)
	mux.HandleFunc("GET /api/v1/sessions/{id}", e.withSession(e.handleStatus))
	mux.HandleFunc("DELETE /api/v1/sessions/{id}", e.handleDelete)
	mux.HandleFunc("POST /api/v1/sessions/{id}/serve", e.withSession(e.handleServe))
	mux.HandleFunc("GET /api/v1/sessions/{id}/churn", e.withSession(e.handleChurn))
	mux.HandleFunc("POST /api/v1/sessions/{id}/snapshot", e.withSession(e.handleSnapshot))
	mux.HandleFunc("POST /api/v1/sessions/restore", e.handleRestore)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// withSession resolves {id} to a live session.
func (e *Engine) withSession(h func(http.ResponseWriter, *http.Request, *Session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		s, ok := e.Session(id)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown session %q", id)
			return
		}
		h(w, r, s)
	}
}

func (e *Engine) handleHealth(w http.ResponseWriter, r *http.Request) {
	e.mu.Lock()
	n := len(e.sessions)
	e.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "sessions": n})
}

func (e *Engine) handleCreate(w http.ResponseWriter, r *http.Request) {
	var cfg SessionConfig
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		httpError(w, http.StatusBadRequest, "bad session config: %v", err)
		return
	}
	s, err := e.CreateSession(cfg)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, s.Status())
}

func (e *Engine) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, e.Statuses())
}

func (e *Engine) handleStatus(w http.ResponseWriter, r *http.Request, s *Session) {
	writeJSON(w, http.StatusOK, s.Status())
}

func (e *Engine) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !e.DeleteSession(id) {
		httpError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// handleSnapshot streams the session's snapshot blob. The body is written
// after the 200 header, so a mid-stream snapshot failure surfaces as a
// truncated body — which the blob's CRC trailer makes detectable on the
// receiving side.
func (e *Engine) handleSnapshot(w http.ResponseWriter, r *http.Request, s *Session) {
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := s.Snapshot(w); err != nil {
		// Headers are already out; all we can do is log and cut the body
		// short. The client's CRC check catches the truncation.
		e.logf("engine: snapshotting session %q: %v", s.ID(), err)
	}
}

// handleRestore recreates a session from a snapshot blob in the request
// body; ?id= renames the restored session.
func (e *Engine) handleRestore(w http.ResponseWriter, r *http.Request) {
	s, err := e.RestoreSession(r.Body, r.URL.Query().Get("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, s.Status())
}

// churnPoll is the follower poll interval of the churn stream: fast
// enough that a follower never falls a ring behind at realistic batch
// rates, slow enough to cost nothing.
const churnPoll = 25 * time.Millisecond

// handleChurn streams a session's per-batch churn events as NDJSON.
// Plain GET dumps the retained ring after the ?after cursor and returns;
// ?follow=1 keeps the response open and tails new batches until the
// client disconnects or the session is deleted. Each line is one
// ChurnEvent; its seq field is the cursor for resuming.
func (e *Engine) handleChurn(w http.ResponseWriter, r *http.Request, s *Session) {
	q := r.URL.Query()
	var after uint64
	if v := q.Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad after cursor %q: %v", v, err)
			return
		}
		after = n
	}
	follow := q.Get("follow") == "1" || q.Get("follow") == "true"
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	fl, _ := w.(http.Flusher)
	for {
		events := s.Churn(after)
		for i := range events {
			if err := enc.Encode(&events[i]); err != nil {
				return
			}
			after = events[i].Seq
		}
		if len(events) > 0 && fl != nil {
			fl.Flush()
		}
		if !follow {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(churnPoll):
		}
		if _, live := e.Session(s.ID()); !live {
			return
		}
	}
}

// serveRequest is the JSON body of the single-request serve path.
type serveRequest struct {
	U int `json:"u"`
	V int `json:"v"`
}

// serveResponse mirrors a wire result frame in JSON.
type serveResponse struct {
	Served       uint64  `json:"served"`
	Routing      float64 `json:"routing_cost"`
	Reconfig     float64 `json:"reconfig_cost"`
	Total        float64 `json:"total_cost"`
	Adds         uint32  `json:"adds"`
	Removals     uint32  `json:"removals"`
	MatchingSize uint32  `json:"matching_size"`
}

func (e *Engine) handleServe(w http.ResponseWriter, r *http.Request, s *Session) {
	var req serveRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var res BatchResult
	if err := s.ServeOne(req.U, req.V, &res); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, serveResponse{
		Served:       res.Served,
		Routing:      res.Routing,
		Reconfig:     res.Reconfig,
		Total:        res.Routing + res.Reconfig,
		Adds:         res.Adds,
		Removals:     res.Removals,
		MatchingSize: res.MatchingSize,
	})
}
