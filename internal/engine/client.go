package engine

import (
	"bufio"
	"fmt"
	"io"
	"net"

	"obm/internal/trace"
)

// Client speaks the binary batch protocol. It pipelines: up to window
// batches may be in flight before the client blocks on a result, which
// keeps the engine's ingest loop fed across the network round-trip. All
// buffers are reused, so a warmed client sends batches without
// allocating. A Client is not safe for concurrent use.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	window      int
	outstanding int
	frame       []byte // reused encode buffer
	rbuf        []byte // reused readFrame buffer
	res         BatchResult
	hasRes      bool
}

// DialIngest connects to an engine's binary ingest address and binds the
// connection to a session. window is the pipelining depth (<= 0 means 1:
// strict request/response).
func DialIngest(addr, session string, window int) (*Client, HelloInfo, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, HelloInfo{}, err
	}
	c, info, err := NewClient(conn, session, window)
	if err != nil {
		conn.Close()
		return nil, HelloInfo{}, err
	}
	return c, info, nil
}

// NewClient performs the hello handshake for session over an established
// connection.
func NewClient(conn net.Conn, session string, window int) (*Client, HelloInfo, error) {
	if window <= 0 {
		window = 1
	}
	c := &Client{
		conn:   conn,
		br:     bufio.NewReaderSize(conn, 64<<10),
		bw:     bufio.NewWriterSize(conn, 32<<10),
		window: window,
	}
	frame, err := appendHello(c.frame, session)
	if err != nil {
		return nil, HelloInfo{}, err
	}
	c.frame = frame
	if _, err := c.bw.Write(c.frame); err != nil {
		return nil, HelloInfo{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, HelloInfo{}, err
	}
	typ, payload, err := readFrame(c.br, &c.rbuf)
	if err != nil {
		return nil, HelloInfo{}, err
	}
	switch typ {
	case frameHelloOK:
		info, err := decodeHelloOK(payload)
		return c, info, err
	case frameError:
		return nil, HelloInfo{}, decodeError(payload)
	default:
		return nil, HelloInfo{}, fmt.Errorf("engine: hello answered with frame type 0x%02x", typ)
	}
}

// Send ships one batch. While the pipeline is filling it returns
// (nil, nil); once window batches are in flight it blocks for one result
// and returns it (valid until the next Send or Drain call).
func (c *Client) Send(reqs []trace.Request) (*BatchResult, error) {
	frame, err := appendBatch(c.frame, reqs)
	if err != nil {
		return nil, err
	}
	c.frame = frame
	if _, err := c.bw.Write(c.frame); err != nil {
		return nil, err
	}
	c.outstanding++
	if c.outstanding < c.window {
		return nil, nil
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	if err := c.readResult(); err != nil {
		return nil, err
	}
	return &c.res, nil
}

// Drain flushes and waits for every in-flight batch, returning the last
// result — the session's cumulative counters after everything sent so
// far. Valid with an empty pipeline only after at least one result has
// been received.
func (c *Client) Drain() (*BatchResult, error) {
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	for c.outstanding > 0 {
		if err := c.readResult(); err != nil {
			return nil, err
		}
	}
	if !c.hasRes {
		return nil, fmt.Errorf("engine: drain before any batch")
	}
	return &c.res, nil
}

// readResult consumes one result frame into c.res.
func (c *Client) readResult() error {
	typ, payload, err := readFrame(c.br, &c.rbuf)
	if err != nil {
		if err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	switch typ {
	case frameResult:
		if err := decodeResult(payload, &c.res); err != nil {
			return err
		}
		c.outstanding--
		c.hasRes = true
		return nil
	case frameError:
		return decodeError(payload)
	default:
		return fmt.Errorf("engine: batch answered with frame type 0x%02x", typ)
	}
}

// Close tears down the connection. In-flight batches may or may not have
// been served; call Drain first for a clean cut.
func (c *Client) Close() error { return c.conn.Close() }
