package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"obm/internal/snap"
)

// Session snapshots: the "OBME" blob is a self-contained session — the
// defaults-filled SessionConfig as JSON followed by the sim.Incremental
// "OBMI" state blob, under one CRC-32 trailer — so an operator can
// serialize a live session, move it to another engine (or survive a
// restart) and recreate it with identical counters and algorithm state.
// Re-attached clients see the restored served count in helloOK and stream
// the tail; by the snapshot equivalence contract the session's cost stream
// continues bit-identically. The latency histogram and batch count are
// observability, not matching state, and start fresh after a restore.

// sessionMagic and sessionSnapVersion identify the session blob format.
var sessionMagic = []byte("OBME")

const sessionSnapVersion = 1

// maxSnapshotConfig bounds the embedded config JSON — the one
// length-prefixed field a decoder must size before validation.
const maxSnapshotConfig = 1 << 16

// Snapshot serializes the session: config, cumulative counters and full
// algorithm state. It holds the session lock, so a snapshot taken between
// batches of a live binary stream is a consistent cut — every batch is
// either fully inside it or fully after it.
func (s *Session) Snapshot(w io.Writer) error {
	cfgJSON, err := json.Marshal(s.cfg)
	if err != nil {
		return fmt.Errorf("engine: encoding session config: %w", err)
	}
	if len(cfgJSON) > maxSnapshotConfig {
		return fmt.Errorf("engine: session config JSON is %d bytes, limit %d", len(cfgJSON), maxSnapshotConfig)
	}
	sw := snap.NewWriter(w)
	sw.Bytes(sessionMagic)
	sw.U8(sessionSnapVersion)
	sw.U32(uint32(len(cfgJSON)))
	sw.Bytes(cfgJSON)
	if sw.Err() != nil {
		return sw.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.inc.Snapshot(sw); err != nil {
		return err
	}
	sw.WriteCRC()
	return sw.Err()
}

// RestoreSession rebuilds a session from a Snapshot blob and registers it,
// subject to the same limit and duplicate checks as CreateSession. A
// non-empty idOverride renames the restored session (restoring a snapshot
// next to its still-live original). The blob is fully decoded, validated
// and CRC-checked before the registry is touched, so a corrupt snapshot
// never leaves a half-restored session behind.
func (e *Engine) RestoreSession(r io.Reader, idOverride string) (*Session, error) {
	sr := snap.NewReader(r)
	sr.Expect(sessionMagic)
	if v := sr.U8(); sr.Err() == nil && v != sessionSnapVersion {
		return nil, snap.Corruptf("engine: session snapshot version %d, this build reads %d", v, sessionSnapVersion)
	}
	n := sr.U32()
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	if n == 0 || n > maxSnapshotConfig {
		return nil, snap.Corruptf("engine: session snapshot config length %d outside (0,%d]", n, maxSnapshotConfig)
	}
	cfgJSON := make([]byte, n)
	sr.Bytes(cfgJSON)
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	var cfg SessionConfig
	dec := json.NewDecoder(bytes.NewReader(cfgJSON))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return nil, snap.Corruptf("engine: session snapshot config: %v", err)
	}
	if idOverride != "" {
		cfg.ID = idOverride
	}
	if cfg.ID == "" {
		return nil, snap.Corruptf("engine: session snapshot carries no id (pass one explicitly)")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s, err := newSession(cfg.ID, cfg)
	if err != nil {
		return nil, err
	}
	if err := s.inc.Restore(sr); err != nil {
		return nil, err
	}
	sr.VerifyCRC()
	if err := sr.Err(); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	if len(e.sessions) >= e.opts.MaxSessions {
		return nil, fmt.Errorf("engine: session limit %d reached", e.opts.MaxSessions)
	}
	if _, ok := e.sessions[cfg.ID]; ok {
		return nil, fmt.Errorf("engine: session %q already exists", cfg.ID)
	}
	e.sessions[cfg.ID] = s
	e.logf("engine: session %q restored from snapshot (racks=%d b=%d alg=%s served=%d)",
		cfg.ID, cfg.Racks, cfg.B, cfg.Alg, s.hello().Served)
	return s, nil
}
