package engine

import (
	"bufio"
	"encoding/json"
	"math"
	"net"
	"net/http/httptest"
	"strings"
	"testing"

	"obm/internal/obs"
	"obm/internal/trace"
)

// TestIngestMetricsAllocFree is the AllocsPerRun twin of
// BenchmarkEngineIngest's 0 allocs/op contract, with metrics explicitly
// enabled: a pipelined client streams batches over real loopback TCP and
// the whole process — client, connection handler, session, counters,
// batch-size histogram, churn ring — must not allocate once warm.
func TestIngestMetricsAllocFree(t *testing.T) {
	const (
		racks  = 64
		batch  = 256
		window = 4
	)
	reg := obs.NewRegistry()
	e := New(Options{Registry: reg})
	defer e.Close()
	if _, err := e.CreateSession(SessionConfig{ID: "m", Racks: racks, B: 8}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go e.ServeIngest(ln)
	c, _, err := DialIngest(ln.Addr().String(), "m", window)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := trace.NewUniformStream(racks, 8192, 3)
	if err != nil {
		t.Fatal(err)
	}
	reqs := trace.Collect(st).Reqs
	nb := len(reqs) / batch
	send := func(i int) {
		if _, err := c.Send(reqs[(i%nb)*batch : (i%nb+1)*batch]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nb; i++ { // warm both ends past the pipeline window
		send(i)
	}
	const runs = 16
	allocs := testing.AllocsPerRun(runs, func() { send(0) })
	if allocs != 0 {
		t.Errorf("ingest with metrics enabled allocates %.1f times per batch, want 0", allocs)
	}
	if _, err := c.Drain(); err != nil {
		t.Fatal(err)
	}

	total := uint64(nb+runs+1) * batch
	if got := e.met.requests.Value(); got != total {
		t.Errorf("obm_engine_ingest_requests_total = %d, want %d", got, total)
	}
	if got := e.met.batches.Value(); got != uint64(nb+runs+1) {
		t.Errorf("obm_engine_ingest_batches_total = %d, want %d", got, nb+runs+1)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"obm_engine_ingest_requests_total ",
		"obm_engine_batch_requests{quantile=\"0.5\"}",
		"obm_engine_session_served_total{session=\"m\"}",
		"obm_engine_session_batch_seconds_count{session=\"m\"}",
		"obm_engine_sessions 1",
	} {
		if !strings.Contains(b.String(), series) {
			t.Errorf("exposition is missing %q:\n%s", series, b.String())
		}
	}
}

// TestChurnStream checks the per-batch churn trace end to end: ring
// cursoring through Session.Churn, delta/cumulative consistency against
// the wire results, and the NDJSON control-plane endpoint.
func TestChurnStream(t *testing.T) {
	e := New(Options{})
	s, err := e.CreateSession(SessionConfig{ID: "c", Racks: 32, B: 4})
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.NewUniformStream(32, 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	reqs := trace.Collect(st).Reqs
	var res BatchResult
	const batch = 100
	for i := 0; i < len(reqs); i += batch {
		frame, err := appendBatch(nil, reqs[i:i+batch])
		if err != nil {
			t.Fatal(err)
		}
		if err := s.FeedBinary(frame[headerSize+4:], &res); err != nil {
			t.Fatal(err)
		}
	}

	events := s.Churn(0)
	if len(events) != 5 {
		t.Fatalf("Churn(0) returned %d events, want 5", len(events))
	}
	var adds, removals uint32
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Requests != batch {
			t.Fatalf("event %d covers %d requests, want %d", i, ev.Requests, batch)
		}
		adds += ev.Adds
		removals += ev.Removals
	}
	last := events[len(events)-1]
	// The final event's cumulative fields are the exact wire-result
	// values — bit-identical, not approximately equal.
	if last.Served != res.Served ||
		math.Float64bits(last.Routing) != math.Float64bits(res.Routing) ||
		math.Float64bits(last.Reconfig) != math.Float64bits(res.Reconfig) {
		t.Fatalf("last churn event %+v disagrees with wire result %+v", last, res)
	}
	st2 := s.Status()
	if adds != uint32(st2.Adds) || removals != uint32(st2.Removals) {
		t.Fatalf("churn deltas sum to %d/%d adds/removals, status says %d/%d",
			adds, removals, st2.Adds, st2.Removals)
	}

	// Cursor: after=3 returns exactly events 4 and 5.
	tail := s.Churn(3)
	if len(tail) != 2 || tail[0].Seq != 4 || tail[1].Seq != 5 {
		t.Fatalf("Churn(3) = %+v", tail)
	}

	// The NDJSON endpoint streams the same events.
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/api/v1/sessions/c/churn?after=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var got []ChurnEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev ChurnEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		got = append(got, ev)
	}
	if len(got) != 3 || got[0].Seq != 3 || got[2].Seq != 5 {
		t.Fatalf("churn endpoint returned %+v", got)
	}
	if resp, err := ts.Client().Get(ts.URL + "/api/v1/sessions/c/churn?after=bogus"); err != nil || resp.StatusCode != 400 {
		t.Fatalf("bad cursor: %v %d", err, resp.StatusCode)
	}
}

// TestStatusPlanes checks the sharded session's per-plane served
// counters: owners follow core.Partition (min endpoint mod shards),
// plane counts sum to the session total, and single-plane sessions
// report no planes.
func TestStatusPlanes(t *testing.T) {
	const (
		racks  = 32
		shards = 4
	)
	e := New(Options{})
	s, err := e.CreateSession(SessionConfig{ID: "p", Racks: racks, B: 2, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.NewUniformStream(racks, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	reqs := trace.Collect(st).Reqs
	want := make([]uint64, shards)
	for _, r := range reqs {
		u := r.Src
		if r.Dst < u {
			u = r.Dst
		}
		want[u%shards]++
	}
	frame, err := appendBatch(nil, reqs)
	if err != nil {
		t.Fatal(err)
	}
	var res BatchResult
	if err := s.FeedBinary(frame[headerSize+4:], &res); err != nil {
		t.Fatal(err)
	}
	status := s.Status()
	if len(status.Planes) != shards {
		t.Fatalf("status has %d planes, want %d", len(status.Planes), shards)
	}
	var sum uint64
	var msum int
	for p, ps := range status.Planes {
		if ps.Plane != p {
			t.Fatalf("plane %d labeled %d", p, ps.Plane)
		}
		if ps.Served != want[p] {
			t.Fatalf("plane %d served %d, want %d", p, ps.Served, want[p])
		}
		sum += ps.Served
		msum += ps.MatchingSize
	}
	if sum != uint64(status.Served) {
		t.Fatalf("plane served sums to %d, session served %d", sum, status.Served)
	}
	if msum != status.MatchingSize {
		t.Fatalf("plane matching sizes sum to %d, session reports %d", msum, status.MatchingSize)
	}

	// Single-plane sessions have no per-plane breakdown.
	s1, err := e.CreateSession(SessionConfig{ID: "p1", Racks: racks, B: 2})
	if err != nil {
		t.Fatal(err)
	}
	if planes := s1.Status().Planes; planes != nil {
		t.Fatalf("unsharded session reports planes %+v", planes)
	}
}
