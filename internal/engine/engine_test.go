package engine

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"obm/internal/graph"
	"obm/internal/sim"
	"obm/internal/trace"
)

// startIngest boots an engine with a TCP ingest listener on loopback and
// returns its address.
func startIngest(t *testing.T, e *Engine) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- e.ServeIngest(ln) }()
	t.Cleanup(func() {
		e.Close()
		if err := <-done; err != nil {
			t.Errorf("ServeIngest: %v", err)
		}
	})
	return ln.Addr().String()
}

// goldenStreams mirrors the four paper trace families pinned by core's
// and sim's golden suites.
func goldenStreams(t *testing.T) map[string]trace.Stream {
	t.Helper()
	fb := trace.FacebookPreset(trace.Database, 40, 7)
	fb.Requests = 20000
	fbs, err := trace.NewFacebookStream(fb)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := trace.NewMicrosoftStream(30, 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	us, err := trace.NewUniformStream(30, 16000, 5)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := trace.NewPhaseShiftStream(30, 16000, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]trace.Stream{"facebook": fbs, "microsoft": ms, "uniform": us, "phaseshift": ps}
}

// feedAndCollect streams reqs to session id in batches, collecting the
// cumulative (routing, reconfig) the engine reports at every batch
// boundary, keyed by served count.
func feedAndCollect(t *testing.T, addr, id string, reqs []trace.Request, batch, window int) map[int][2]float64 {
	t.Helper()
	c, info, err := DialIngest(addr, id, window)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if info.Served != 0 {
		t.Fatalf("fresh session served = %d", info.Served)
	}
	out := make(map[int][2]float64)
	record := func(res *BatchResult) {
		if res != nil {
			out[int(res.Served)] = [2]float64{res.Routing, res.Reconfig}
		}
	}
	for start := 0; start < len(reqs); start += batch {
		end := start + batch
		if end > len(reqs) {
			end = len(reqs)
		}
		res, err := c.Send(reqs[start:end])
		if err != nil {
			t.Fatal(err)
		}
		record(res)
	}
	res, err := c.Drain()
	if err != nil {
		t.Fatal(err)
	}
	record(res)
	return out
}

// TestEngineMatchesOfflineReplay is the determinism acceptance test: on
// all four paper trace families, the cumulative cost stream the engine
// reports over the wire is bit-identical to an offline sim.RunSource
// replay of the same requests through an identically-seeded algorithm, at
// every batch boundary.
func TestEngineMatchesOfflineReplay(t *testing.T) {
	const batch = 1000
	e := New(Options{})
	addr := startIngest(t, e)
	for name, st := range goldenStreams(t) {
		t.Run(name, func(t *testing.T) {
			cfg := SessionConfig{ID: name, Racks: st.NumRacks(), B: 8, Alg: "r-bma", Seed: 3}
			if _, err := e.CreateSession(cfg); err != nil {
				t.Fatal(err)
			}
			// window 1 (strict request/response) so every batch boundary's
			// result is observed; the pipelined window is exercised by the
			// sharded and concurrent tests.
			reqs := trace.Collect(st).Reqs
			got := feedAndCollect(t, addr, name, reqs, batch, 1)

			// Offline twin: same registry build, same seed, chunked replay
			// with checkpoints at the wire's batch boundaries.
			cfg = cfg.withDefaults()
			alg, err := cfg.spec().BuildAlgorithm(cfg.Alg, cfg.B, cfg.Seed)
			if err != nil {
				t.Fatal(err)
			}
			st.Reset()
			src, err := trace.NewSource(st, graph.FatTreeRacks(cfg.Racks).Metric().Dist)
			if err != nil {
				t.Fatal(err)
			}
			var checkpoints []int
			for i := batch; i < len(reqs); i += batch {
				checkpoints = append(checkpoints, i)
			}
			checkpoints = append(checkpoints, len(reqs))
			res, err := sim.RunSource(alg, src, cfg.Alpha, checkpoints, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i, x := range res.Series.X {
				g, ok := got[x]
				if !ok {
					t.Fatalf("engine reported no result at %d served", x)
				}
				if math.Float64bits(g[0]) != math.Float64bits(res.Series.Routing[i]) ||
					math.Float64bits(g[1]) != math.Float64bits(res.Series.Reconfig[i]) {
					t.Fatalf("served=%d: engine (%v, %v) != offline (%v, %v)",
						x, g[0], g[1], res.Series.Routing[i], res.Series.Reconfig[i])
				}
			}
		})
	}
}

// TestEngineShardedMatchesOffline repeats the determinism check for a
// multi-plane (core.Sharded) session.
func TestEngineShardedMatchesOffline(t *testing.T) {
	st, err := trace.NewUniformStream(32, 8000, 9)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{})
	addr := startIngest(t, e)
	cfg := SessionConfig{ID: "sharded", Racks: 32, B: 4, Alg: "r-bma", Seed: 5, Shards: 4}
	if _, err := e.CreateSession(cfg); err != nil {
		t.Fatal(err)
	}
	reqs := trace.Collect(st).Reqs
	got := feedAndCollect(t, addr, "sharded", reqs, 500, 2)

	cfg = cfg.withDefaults()
	alg, err := cfg.spec().BuildAlgorithm(cfg.Alg, cfg.B, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	st.Reset()
	src, err := trace.NewSource(st, graph.FatTreeRacks(cfg.Racks).Metric().Dist)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunSource(alg, src, cfg.Alpha, []int{len(reqs)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := got[len(reqs)]
	if math.Float64bits(g[0]) != math.Float64bits(res.Series.Routing[0]) ||
		math.Float64bits(g[1]) != math.Float64bits(res.Series.Reconfig[0]) {
		t.Fatalf("sharded: engine (%v, %v) != offline (%v, %v)",
			g[0], g[1], res.Series.Routing[0], res.Series.Reconfig[0])
	}
}

// TestEngineConcurrentSessions exercises independent sessions fed from
// concurrent connections while the HTTP plane polls status; run under
// -race this pins the locking discipline. Each session must still match
// its offline twin exactly — concurrency across sessions must not leak
// into any session's request order.
func TestEngineConcurrentSessions(t *testing.T) {
	e := New(Options{})
	addr := startIngest(t, e)
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	const n = 4
	var wg sync.WaitGroup
	finals := make([][2]float64, n)
	for i := 0; i < n; i++ {
		cfg := SessionConfig{ID: fmt.Sprintf("c%d", i), Racks: 24, B: 4, Alg: "r-bma", Seed: uint64(i)}
		if _, err := e.CreateSession(cfg); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, cfg SessionConfig) {
			defer wg.Done()
			st, err := trace.NewUniformStream(24, 4000, uint64(100+i))
			if err != nil {
				t.Error(err)
				return
			}
			reqs := trace.Collect(st).Reqs
			got := feedAndCollect(t, addr, cfg.ID, reqs, 250, 3)
			finals[i] = got[len(reqs)]
		}(i, cfg)
	}
	// Status polling races against ingest on purpose.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			resp, err := http.Get(ts.URL + "/api/v1/sessions")
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}
	}()
	wg.Wait()

	for i := 0; i < n; i++ {
		cfg := SessionConfig{ID: fmt.Sprintf("c%d", i), Racks: 24, B: 4, Alg: "r-bma", Seed: uint64(i)}.withDefaults()
		alg, err := cfg.spec().BuildAlgorithm(cfg.Alg, cfg.B, cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		st, err := trace.NewUniformStream(24, 4000, uint64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		src, err := trace.NewSource(st, graph.FatTreeRacks(24).Metric().Dist)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.RunSource(alg, src, cfg.Alpha, []int{4000}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(finals[i][0]) != math.Float64bits(res.Series.Routing[0]) ||
			math.Float64bits(finals[i][1]) != math.Float64bits(res.Series.Reconfig[0]) {
			t.Errorf("session c%d: engine (%v, %v) != offline (%v, %v)",
				i, finals[i][0], finals[i][1], res.Series.Routing[0], res.Series.Reconfig[0])
		}
	}
}

// rawConn is a hand-driven protocol connection for error-path tests.
type rawConn struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
	buf  []byte
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawConn{t: t, conn: conn, br: bufio.NewReader(conn)}
}

func (r *rawConn) send(frame []byte) {
	r.t.Helper()
	if _, err := r.conn.Write(frame); err != nil {
		r.t.Fatal(err)
	}
}

// expectError reads one frame and asserts it is an error frame whose
// message contains want, followed by connection close.
func (r *rawConn) expectError(want string) {
	r.t.Helper()
	typ, payload, err := readFrame(r.br, &r.buf)
	if err != nil {
		r.t.Fatalf("reading error frame: %v", err)
	}
	if typ != frameError {
		r.t.Fatalf("frame type 0x%02x, want error", typ)
	}
	if err := decodeError(payload); err == nil || !strings.Contains(err.Error(), want) {
		r.t.Fatalf("error %v does not contain %q", err, want)
	}
	if _, _, err := readFrame(r.br, &r.buf); err == nil {
		r.t.Fatal("connection still open after error frame")
	}
}

func (r *rawConn) hello(session string) {
	r.t.Helper()
	frame, err := appendHello(nil, session)
	if err != nil {
		r.t.Fatal(err)
	}
	r.send(frame)
	typ, payload, err := readFrame(r.br, &r.buf)
	if err != nil {
		r.t.Fatal(err)
	}
	if typ != frameHelloOK {
		r.t.Fatalf("hello answered with frame type 0x%02x", typ)
	}
	if _, err := decodeHelloOK(payload); err != nil {
		r.t.Fatal(err)
	}
}

func TestEngineProtocolErrors(t *testing.T) {
	e := New(Options{})
	addr := startIngest(t, e)
	if _, err := e.CreateSession(SessionConfig{ID: "live", Racks: 8, B: 2}); err != nil {
		t.Fatal(err)
	}
	batchFor := func(reqs ...trace.Request) []byte {
		frame, err := appendBatch(nil, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return frame
	}

	t.Run("bad magic", func(t *testing.T) {
		r := dialRaw(t, addr)
		frame, _ := appendHello(nil, "live")
		copy(frame[headerSize:], "NOPE")
		r.send(frame)
		r.expectError("bad hello magic")
	})
	t.Run("unknown session", func(t *testing.T) {
		r := dialRaw(t, addr)
		frame, _ := appendHello(nil, "ghost")
		r.send(frame)
		r.expectError(`unknown session "ghost"`)
	})
	t.Run("batch before hello", func(t *testing.T) {
		r := dialRaw(t, addr)
		r.send(batchFor(trace.Request{Src: 0, Dst: 1}))
		r.expectError("want hello")
	})
	t.Run("second hello", func(t *testing.T) {
		r := dialRaw(t, addr)
		r.hello("live")
		frame, _ := appendHello(nil, "live")
		r.send(frame)
		r.expectError("want batch")
	})
	t.Run("count mismatch", func(t *testing.T) {
		r := dialRaw(t, addr)
		r.hello("live")
		frame := batchFor(trace.Request{Src: 0, Dst: 1}, trace.Request{Src: 2, Dst: 3})
		binary.LittleEndian.PutUint32(frame[headerSize:], 5) // lie about count
		r.send(frame)
		r.expectError("declares 5 requests")
	})
	t.Run("rack out of range", func(t *testing.T) {
		r := dialRaw(t, addr)
		r.hello("live")
		r.send(batchFor(trace.Request{Src: 0, Dst: 99}))
		r.expectError("outside 8 racks")
	})
	t.Run("self pair", func(t *testing.T) {
		r := dialRaw(t, addr)
		r.hello("live")
		r.send(batchFor(trace.Request{Src: 3, Dst: 3}))
		r.expectError("self-pair")
	})
	t.Run("session deleted mid-stream", func(t *testing.T) {
		if _, err := e.CreateSession(SessionConfig{ID: "doomed", Racks: 8, B: 2}); err != nil {
			t.Fatal(err)
		}
		r := dialRaw(t, addr)
		r.hello("doomed")
		if !e.DeleteSession("doomed") {
			t.Fatal("delete failed")
		}
		r.send(batchFor(trace.Request{Src: 0, Dst: 1}))
		r.expectError(`session "doomed" deleted`)
	})
	// An invalid batch must not corrupt the session: state is unchanged,
	// and a reconnect can continue.
	t.Run("session survives bad batch", func(t *testing.T) {
		r := dialRaw(t, addr)
		r.hello("live")
		r.send(batchFor(trace.Request{Src: 0, Dst: 1}, trace.Request{Src: 7, Dst: 7}))
		r.expectError("self-pair")
		s, ok := e.Session("live")
		if !ok {
			t.Fatal("session gone")
		}
		if served := s.Status().Served; served != 0 {
			t.Fatalf("half-applied batch: served = %d, want 0", served)
		}
		c, info, err := DialIngest(addr, "live", 1)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if info.Served != 0 {
			t.Fatalf("reconnect served = %d, want 0", info.Served)
		}
		if _, err := c.Send([]trace.Request{{Src: 0, Dst: 1}}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestEngineHTTP(t *testing.T) {
	e := New(Options{MaxSessions: 2})
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()
	post := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	if resp, _ := post("/api/v1/sessions", `{"id":"web","racks":16,"b":4}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	if resp, body := post("/api/v1/sessions", `{"id":"web","racks":16,"b":4}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate create: %d %s", resp.StatusCode, body)
	}
	if resp, _ := post("/api/v1/sessions", `{"racks":1,"b":4}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad racks accepted: %d", resp.StatusCode)
	}
	if resp, _ := post("/api/v1/sessions", `{"racks":16,"b":4,"bogus":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: %d", resp.StatusCode)
	}

	// Serve two requests and watch the counters move.
	resp, body := post("/api/v1/sessions/web/serve", `{"u":3,"v":7}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("serve: %d %s", resp.StatusCode, body)
	}
	var sr serveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Served != 1 {
		t.Fatalf("served = %d, want 1", sr.Served)
	}
	if resp, _ := post("/api/v1/sessions/web/serve", `{"u":7,"v":7}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("self-pair accepted: %d", resp.StatusCode)
	}
	if resp, _ := post("/api/v1/sessions/nope/serve", `{"u":0,"v":1}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session serve: %d", resp.StatusCode)
	}

	// Status carries the served count and latency summary.
	sresp, err := http.Get(ts.URL + "/api/v1/sessions/web")
	if err != nil {
		t.Fatal(err)
	}
	var st SessionStatus
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Served != 1 || st.Latency.Batches != 1 {
		t.Fatalf("status served/batches = %d/%d, want 1/1", st.Served, st.Latency.Batches)
	}

	// Session cap.
	if resp, _ := post("/api/v1/sessions", `{"racks":16,"b":4}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("second create: %d", resp.StatusCode)
	}
	if resp, body := post("/api/v1/sessions", `{"racks":16,"b":4}`); resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "limit") {
		t.Fatalf("over-cap create: %d %s", resp.StatusCode, body)
	}

	// Delete, then 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/sessions/web", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/api/v1/sessions/web"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status after delete: %v %d", err, resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v", err)
	}
}

// TestFeedBinaryAllocFree pins the tentpole's zero-allocation contract on
// the server hot path: once the session's scratch buffer is warm, serving
// a wire batch allocates nothing.
func TestFeedBinaryAllocFree(t *testing.T) {
	e := New(Options{})
	s, err := e.CreateSession(SessionConfig{Racks: 64, B: 8, Alg: "r-bma"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.NewUniformStream(64, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	reqs := trace.Collect(st).Reqs
	frame, err := appendBatch(nil, reqs)
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[headerSize+4:]
	var res BatchResult
	if err := s.FeedBinary(payload, &res); err != nil { // warm scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := s.FeedBinary(payload, &res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("FeedBinary allocates %.1f times per batch, want 0", allocs)
	}
}
