package engine

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"io"
	"strings"
	"testing"

	"obm/internal/trace"
)

// The golden wire bytes: hand-assembled hex for every frame type. These
// pin the protocol's exact encoding — a byte-order or layout change breaks
// these before it breaks a live deployment.
func TestWireGoldenBytes(t *testing.T) {
	golden := []struct {
		name string
		got  func(t *testing.T) []byte
		hex  string
	}{
		{
			name: "hello",
			got: func(t *testing.T) []byte {
				b, err := appendHello(nil, "ab")
				if err != nil {
					t.Fatal(err)
				}
				return b
			},
			// len=8 | 0x01 | "OBM1" | idLen=2 | "ab"
			hex: "08000000" + "01" + "4f424d31" + "0200" + "6162",
		},
		{
			name: "batch",
			got: func(t *testing.T) []byte {
				b, err := appendBatch(nil, []trace.Request{{Src: 3, Dst: 7}, {Src: 9, Dst: 2}})
				if err != nil {
					t.Fatal(err)
				}
				return b
			},
			// len=20 | 0x02 | count=2 | (3,7) | (9,2)
			hex: "14000000" + "02" + "02000000" + "03000000" + "07000000" + "09000000" + "02000000",
		},
		{
			name: "helloOK",
			got: func(t *testing.T) []byte {
				var buf [headerSize + helloOKSize]byte
				encodeHelloOK(&buf, HelloInfo{Racks: 40, B: 8, Alpha: 30, Served: 7})
				return buf[:]
			},
			// len=24 | 0x81 | racks=40 | b=8 | alpha=30.0 | served=7
			hex: "18000000" + "81" + "28000000" + "08000000" + "000000000000" + "3e40" + "0700000000000000",
		},
		{
			name: "result",
			got: func(t *testing.T) []byte {
				var buf [headerSize + resultSize]byte
				encodeResult(&buf, &BatchResult{
					Served: 5, Routing: 1.5, Reconfig: 90,
					Adds: 3, Removals: 1, MatchingSize: 4,
				})
				return buf[:]
			},
			// len=36 | 0x82 | served=5 | 1.5 | 90.0 | adds=3 | rm=1 | ms=4
			hex: "24000000" + "82" + "0500000000000000" +
				"000000000000f83f" + "0000000000805640" +
				"03000000" + "01000000" + "04000000",
		},
		{
			name: "error",
			got:  func(t *testing.T) []byte { return appendErrorFrame(nil, "boom") },
			// len=6 | 0x7f | msgLen=4 | "boom"
			hex: "06000000" + "7f" + "0400" + "626f6f6d",
		},
	}
	for _, g := range golden {
		want, err := hex.DecodeString(g.hex)
		if err != nil {
			t.Fatalf("%s: bad golden hex: %v", g.name, err)
		}
		if got := g.got(t); !bytes.Equal(got, want) {
			t.Errorf("%s:\n got %x\nwant %x", g.name, got, want)
		}
	}
}

func TestWireRoundTrip(t *testing.T) {
	in := BatchResult{Served: 1 << 40, Routing: 123.456, Reconfig: 7890, Adds: 12, Removals: 9, MatchingSize: 320}
	var buf [headerSize + resultSize]byte
	encodeResult(&buf, &in)
	var out BatchResult
	if err := decodeResult(buf[headerSize:], &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("result round-trip: got %+v, want %+v", out, in)
	}

	info := HelloInfo{Racks: 128, B: 16, Alpha: 45.5, Served: 99}
	var hb [headerSize + helloOKSize]byte
	encodeHelloOK(&hb, info)
	got, err := decodeHelloOK(hb[headerSize:])
	if err != nil {
		t.Fatal(err)
	}
	if got != info {
		t.Errorf("helloOK round-trip: got %+v, want %+v", got, info)
	}

	if err := decodeError(appendErrorFrame(nil, "kaput")[headerSize:]); err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Errorf("error round-trip: %v", err)
	}
}

// readOne frames raw bytes through readFrame.
func readOne(raw []byte) (byte, []byte, error) {
	var buf []byte
	return readFrame(bufio.NewReader(bytes.NewReader(raw)), &buf)
}

func TestWireTruncatedAndCorrupt(t *testing.T) {
	whole, err := appendBatch(nil, []trace.Request{{Src: 1, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}

	// Truncation at every boundary: mid-header and mid-payload.
	for cut := 0; cut < len(whole); cut++ {
		_, _, err := readOne(whole[:cut])
		if err == nil {
			t.Fatalf("cut at %d bytes: no error", cut)
		}
		if cut >= headerSize && err != nil && !strings.Contains(err.Error(), "truncated") {
			t.Errorf("cut at %d bytes: error %q does not mention truncation", cut, err)
		}
	}
	if _, _, err := readOne(whole); err != nil {
		t.Fatalf("whole frame: %v", err)
	}

	// A length prefix past the limit is rejected before any payload read.
	huge := append([]byte(nil), whole...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := readOne(huge); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized frame: %v", err)
	}

	// Corrupt fixed-size payloads.
	if _, err := decodeHelloOK(make([]byte, helloOKSize-1)); err == nil {
		t.Error("short helloOK decoded")
	}
	var res BatchResult
	if err := decodeResult(make([]byte, resultSize+1), &res); err == nil {
		t.Error("long result decoded")
	}
	if err := decodeError([]byte{9}); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("1-byte error frame: %v", err)
	}
	if err := decodeError([]byte{9, 0, 'x'}); err == nil || !strings.Contains(err.Error(), "declares") {
		t.Errorf("mislengthed error frame: %v", err)
	}

	// Batch and hello encoders reject out-of-range inputs.
	if _, err := appendBatch(nil, nil); err == nil {
		t.Error("empty batch encoded")
	}
	if _, err := appendHello(nil, ""); err == nil {
		t.Error("empty session id encoded")
	}
}

// TestWireReadFrameReuse pins the zero-alloc contract of the read path:
// once the buffer has grown, reading frames allocates nothing.
func TestWireReadFrameReuse(t *testing.T) {
	frame, err := appendBatch(nil, []trace.Request{{Src: 1, Dst: 2}, {Src: 3, Dst: 4}})
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	const n = 50
	for i := 0; i < n; i++ {
		stream.Write(frame)
	}
	br := bufio.NewReader(bytes.NewReader(stream.Bytes()))
	var buf []byte
	if _, _, err := readFrame(br, &buf); err != nil { // growth read
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(n-2, func() {
		if _, _, err := readFrame(br, &buf); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("readFrame allocates %.1f times per frame, want 0", allocs)
	}
}
