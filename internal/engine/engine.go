// Package engine is the live matching engine: a long-lived server that
// owns algorithm instances (sessions) and serves the paper's online
// (b, α)-matching decisions at line rate. Each session wraps one
// algorithm — the same core.CompiledServer / core.Sharded instances the
// offline replay paths drive — behind the shared incremental step surface
// (sim.Incremental), so a session fed a request sequence over the wire
// reports cumulative costs bit-identical to an offline sim.RunSource
// replay of that sequence.
//
// Two ingest paths share every session:
//
//   - HTTP/JSON (http.go): session lifecycle, a single-request serve path
//     for operability, and status with latency quantiles.
//   - A length-prefixed binary batch protocol over TCP (wire.go): the hot
//     path, zero allocations per batch on both ends once warm.
package engine

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"sync"

	"obm/internal/obs"
)

// Options tunes an Engine.
type Options struct {
	// MaxSessions caps live sessions (default 64): each session owns an
	// O(racks²) metric-backed algorithm, so the registry must not grow
	// unboundedly on behalf of remote callers.
	MaxSessions int
	// Logf, when non-nil, receives connection-level log lines.
	Logf func(format string, args ...any)
	// Registry, when non-nil, is where the engine registers its
	// obm_engine_* metrics (nil gets a private registry). Either way the
	// exposition is served at GET /metrics on the control plane.
	Registry *obs.Registry
}

// engineMetrics are the engine-wide ingest series. The per-batch updates
// in serveConn are two atomic adds and one mutexed histogram record per
// *batch* — engine_test.go pins that the ingest loop stays 0 allocs/op
// with them enabled.
type engineMetrics struct {
	requests  *obs.Counter
	batches   *obs.Counter
	errors    *obs.Counter
	conns     *obs.Gauge
	batchSize *obs.Histogram
}

// Engine is the session registry plus the binary ingest listener. One
// Engine serves any number of HTTP and TCP clients concurrently;
// per-session serialization happens inside Session.
type Engine struct {
	opts Options
	reg  *obs.Registry
	met  engineMetrics

	mu       sync.Mutex
	sessions map[string]*Session
	seq      int
	closed   bool
	lns      []net.Listener
	conns    map[net.Conn]struct{}
}

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("engine: closed")

// New builds an empty engine.
func New(opts Options) *Engine {
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = 64
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e := &Engine{
		opts:     opts,
		reg:      reg,
		sessions: make(map[string]*Session),
		conns:    make(map[net.Conn]struct{}),
	}
	e.met = engineMetrics{
		requests:  reg.Counter("obm_engine_ingest_requests_total", "Requests served over the binary ingest plane."),
		batches:   reg.Counter("obm_engine_ingest_batches_total", "Batch frames served over the binary ingest plane."),
		errors:    reg.Counter("obm_engine_ingest_errors_total", "Binary ingest connections failed by protocol or session errors."),
		conns:     reg.Gauge("obm_engine_ingest_connections", "Open binary ingest connections."),
		batchSize: reg.Histogram("obm_engine_batch_requests", "Requests per ingest batch frame.", 1),
	}
	reg.Collect(e.collect)
	return e
}

// Registry returns the engine's metrics registry (the one serving
// GET /metrics).
func (e *Engine) Registry() *obs.Registry { return e.reg }

// collect emits the dynamic per-session series at scrape time, in sorted
// session order so the exposition is deterministic.
func (e *Engine) collect(x *obs.Exposition) {
	ss := e.Statuses()
	x.Gauge("obm_engine_sessions", "Live sessions.", float64(len(ss)))
	for i := range ss {
		st := &ss[i]
		lbl := obs.Label{Key: "session", Value: st.ID}
		x.Counter("obm_engine_session_served_total", "Requests served by the session.", uint64(st.Served), lbl)
		x.Counter("obm_engine_session_adds_total", "Matching edges added by the session.", uint64(st.Adds), lbl)
		x.Counter("obm_engine_session_removals_total", "Matching edges removed by the session.", uint64(st.Removals), lbl)
		x.Counter("obm_engine_session_batches_total", "Batches served by the session.", st.Latency.Batches, lbl)
		x.Gauge("obm_engine_session_routing_cost", "Cumulative routing cost.", st.Routing, lbl)
		x.Gauge("obm_engine_session_reconfig_cost", "Cumulative reconfiguration cost.", st.Reconfig, lbl)
		x.Gauge("obm_engine_session_matching_size", "Current matching size.", float64(st.MatchingSize), lbl)
		for _, p := range st.Planes {
			x.Counter("obm_engine_plane_served_total", "Requests served per switch plane of sharded sessions.",
				p.Served, lbl, obs.Label{Key: "plane", Value: strconv.Itoa(p.Plane)})
		}
	}
	// Latency summaries need the live sessions (statuses carry only the
	// derived microsecond views).
	e.mu.Lock()
	live := make([]*Session, 0, len(e.sessions))
	for _, s := range e.sessions {
		live = append(live, s)
	}
	e.mu.Unlock()
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
	for _, s := range live {
		x.Summary("obm_engine_session_batch_seconds", "Per-batch serve latency.",
			s.Latency(), 1e-9, obs.Label{Key: "session", Value: s.id})
	}
}

func (e *Engine) logf(format string, args ...any) {
	if e.opts.Logf != nil {
		e.opts.Logf(format, args...)
	}
}

// CreateSession validates cfg, builds the algorithm instance and
// registers the session. An empty cfg.ID gets an assigned "s<n>" name;
// a duplicate ID is an error.
func (e *Engine) CreateSession(cfg SessionConfig) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	if len(e.sessions) >= e.opts.MaxSessions {
		return nil, fmt.Errorf("engine: session limit %d reached", e.opts.MaxSessions)
	}
	id := cfg.ID
	if id == "" {
		e.seq++
		id = fmt.Sprintf("s%d", e.seq)
		cfg.ID = id
	}
	if _, ok := e.sessions[id]; ok {
		return nil, fmt.Errorf("engine: session %q already exists", id)
	}
	s, err := newSession(id, cfg)
	if err != nil {
		return nil, err
	}
	e.sessions[id] = s
	e.logf("engine: session %q created (racks=%d b=%d alg=%s alpha=%g shards=%d seed=%d)",
		id, cfg.Racks, cfg.B, cfg.Alg, cfg.Alpha, cfg.Shards, cfg.Seed)
	return s, nil
}

// Session looks up a live session.
func (e *Engine) Session(id string) (*Session, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.sessions[id]
	return s, ok
}

// DeleteSession removes a session, reporting whether it existed. Binary
// connections bound to it fail their next batch.
func (e *Engine) DeleteSession(id string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.sessions[id]
	delete(e.sessions, id)
	return ok
}

// Statuses snapshots every live session, sorted by ID.
func (e *Engine) Statuses() []SessionStatus {
	e.mu.Lock()
	ss := make([]*Session, 0, len(e.sessions))
	for _, s := range e.sessions {
		ss = append(ss, s)
	}
	e.mu.Unlock()
	out := make([]SessionStatus, len(ss))
	for i, s := range ss {
		out[i] = s.Status()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ServeIngest accepts binary-protocol connections on ln until the
// listener is closed (by Close or externally). Every connection gets its
// own goroutine and reused frame buffers.
func (e *Engine) ServeIngest(ln net.Listener) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	e.lns = append(e.lns, ln)
	e.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			e.mu.Lock()
			closed := e.closed
			e.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return nil
		}
		e.conns[conn] = struct{}{}
		e.mu.Unlock()
		e.met.conns.Add(1)
		go func() {
			defer func() {
				conn.Close()
				e.mu.Lock()
				delete(e.conns, conn)
				e.mu.Unlock()
				e.met.conns.Add(-1)
			}()
			if err := e.serveConn(conn); err != nil {
				e.logf("engine: conn %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// Close shuts the engine: ingest listeners stop accepting, open binary
// connections are severed, sessions are dropped.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	lns := e.lns
	e.lns = nil
	conns := make([]net.Conn, 0, len(e.conns))
	for c := range e.conns {
		conns = append(conns, c)
	}
	e.sessions = make(map[string]*Session)
	e.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return nil
}

// serveConn runs one binary-protocol connection: a hello frame binds it
// to a session, then batch frames stream until EOF or error. A protocol
// or session error is reported with an error frame and closes the
// connection; the session itself survives. The read buffer, scratch
// request buffer (inside the session) and the fixed-size result frame are
// all reused, so the per-batch loop allocates nothing.
func (e *Engine) serveConn(conn net.Conn) error {
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 32<<10)
	var buf []byte

	fail := func(err error) error {
		e.met.errors.Inc()
		bw.Write(appendErrorFrame(nil, err.Error()))
		bw.Flush()
		return err
	}

	// Handshake: exactly one hello first.
	typ, payload, err := readFrame(br, &buf)
	if err != nil {
		return err
	}
	if typ != frameHello {
		return fail(fmt.Errorf("engine: first frame type 0x%02x, want hello", typ))
	}
	if len(payload) < len(helloMagic)+2 || [4]byte(payload[:4]) != helloMagic {
		return fail(errors.New("engine: bad hello magic"))
	}
	idLen := int(uint16(payload[4]) | uint16(payload[5])<<8)
	if 6+idLen != len(payload) {
		return fail(fmt.Errorf("engine: hello declares %d id bytes, carries %d", idLen, len(payload)-6))
	}
	id := string(payload[6 : 6+idLen])
	sess, ok := e.Session(id)
	if !ok {
		return fail(fmt.Errorf("engine: unknown session %q", id))
	}
	var okBuf [headerSize + helloOKSize]byte
	encodeHelloOK(&okBuf, sess.hello())
	if _, err := bw.Write(okBuf[:]); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	// Steady state: batch in, result out. Flush only when no further
	// frame is buffered, so a pipelining client gets its results in
	// one segment.
	var res BatchResult
	var resBuf [headerSize + resultSize]byte
	for {
		typ, payload, err := readFrame(br, &buf)
		if err != nil {
			if err == io.EOF {
				return bw.Flush()
			}
			return err
		}
		if typ != frameBatch {
			return fail(fmt.Errorf("engine: frame type 0x%02x, want batch", typ))
		}
		if len(payload) < 4 {
			return fail(fmt.Errorf("engine: batch payload %d bytes, want >= 4", len(payload)))
		}
		count := int(binary.LittleEndian.Uint32(payload))
		if count == 0 || count > MaxBatch {
			return fail(fmt.Errorf("engine: batch count %d out of range [1, %d]", count, MaxBatch))
		}
		if 4+8*count != len(payload) {
			return fail(fmt.Errorf("engine: batch declares %d requests, carries %d bytes of pairs", count, len(payload)-4))
		}
		if _, live := e.Session(id); !live {
			return fail(fmt.Errorf("engine: session %q deleted", id))
		}
		if err := sess.FeedBinary(payload[4:], &res); err != nil {
			return fail(err)
		}
		e.met.requests.Add(uint64(count))
		e.met.batches.Inc()
		e.met.batchSize.Observe(uint64(count))
		encodeResult(&resBuf, &res)
		if _, err := bw.Write(resBuf[:]); err != nil {
			return err
		}
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return err
			}
		}
	}
}
