package engine

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"obm/internal/trace"
)

// The binary batch protocol: the engine's line-rate ingest path. A client
// opens a TCP connection, binds it to a session with a hello frame, then
// streams request batches; the engine answers every batch with one result
// frame carrying the session's cumulative costs (bit-identical to an
// offline replay of the same request sequence) and the batch's matching
// deltas. Framing is length-prefixed so both sides read with two
// io.ReadFulls into reused buffers — the steady-state hot path allocates
// nothing on either end.
//
// All integers are little-endian. Every frame is
//
//	u32 payload length | u8 frame type | payload
//
// with payloads:
//
//	hello   (0x01, client→engine)  "OBM1" | u16 id length | session id
//	batch   (0x02, client→engine)  u32 count | count × (u32 u | u32 v)
//	helloOK (0x81, engine→client)  u32 racks | u32 b | f64 alpha | u64 served
//	result  (0x82, engine→client)  u64 served | f64 routing | f64 reconfig |
//	                               u32 adds | u32 removals | u32 matching size
//	error   (0x7f, engine→client)  u16 message length | message (UTF-8)
//
// A batch's (u, v) words are rack indices in either order (the engine
// canonicalizes); `served`, `routing` and `reconfig` are cumulative over
// the session, while `adds`/`removals` count only the batch's matching
// changes. An error frame is terminal: the engine closes the connection
// after sending it (the session itself survives — reconnect and continue).
const (
	frameHello   byte = 0x01
	frameBatch   byte = 0x02
	frameHelloOK byte = 0x81
	frameResult  byte = 0x82
	frameError   byte = 0x7f

	headerSize = 5

	// maxFramePayload bounds one frame; it caps a batch at MaxBatch
	// requests and keeps a malicious length prefix from ballooning the
	// reused read buffer.
	maxFramePayload = 1 << 20

	// MaxBatch is the largest request count one batch frame may carry.
	MaxBatch = (maxFramePayload - 4) / 8

	helloOKSize = 4 + 4 + 8 + 8
	resultSize  = 8 + 8 + 8 + 4 + 4 + 4
)

// helloMagic guards against a stray client speaking the wrong protocol:
// it is the first payload bytes of the first frame on every connection.
var helloMagic = [4]byte{'O', 'B', 'M', '1'}

// BatchResult is one result frame: the session's cumulative counters
// after serving a batch, plus the batch's own matching deltas.
type BatchResult struct {
	// Served is the session's cumulative request count.
	Served uint64
	// Routing and Reconfig are the session's cumulative costs — the same
	// bits an offline sim.RunSource replay of the full request sequence
	// reports at this request count.
	Routing  float64
	Reconfig float64
	// Adds and Removals count the matching edges changed by this batch.
	Adds     uint32
	Removals uint32
	// MatchingSize is the current number of matching edges.
	MatchingSize uint32
}

// HelloInfo is the engine's hello acknowledgment: the session's shape and
// how many requests it has already served (non-zero when re-attaching to
// a live session).
type HelloInfo struct {
	Racks  int
	B      int
	Alpha  float64
	Served uint64
}

// putHeader writes the 5-byte frame header.
func putHeader(b []byte, typ byte, payloadLen int) {
	binary.LittleEndian.PutUint32(b, uint32(payloadLen))
	b[4] = typ
}

// appendHello appends a complete hello frame.
func appendHello(dst []byte, session string) ([]byte, error) {
	if len(session) == 0 || len(session) > math.MaxUint16 {
		return dst, fmt.Errorf("engine: session id length %d out of range [1, %d]", len(session), math.MaxUint16)
	}
	n := len(helloMagic) + 2 + len(session)
	dst = growFrame(dst, n)
	putHeader(dst, frameHello, n)
	p := dst[headerSize:]
	copy(p, helloMagic[:])
	binary.LittleEndian.PutUint16(p[4:], uint16(len(session)))
	copy(p[6:], session)
	return dst, nil
}

// appendBatch appends a complete batch frame encoding reqs as (u, v)
// uint32 pairs. dst is reused across calls, so steady-state encoding
// allocates nothing.
func appendBatch(dst []byte, reqs []trace.Request) ([]byte, error) {
	if len(reqs) == 0 || len(reqs) > MaxBatch {
		return dst, fmt.Errorf("engine: batch of %d requests out of range [1, %d]", len(reqs), MaxBatch)
	}
	n := 4 + 8*len(reqs)
	dst = growFrame(dst, n)
	putHeader(dst, frameBatch, n)
	p := dst[headerSize:]
	binary.LittleEndian.PutUint32(p, uint32(len(reqs)))
	p = p[4:]
	for i, r := range reqs {
		binary.LittleEndian.PutUint32(p[i*8:], uint32(r.Src))
		binary.LittleEndian.PutUint32(p[i*8+4:], uint32(r.Dst))
	}
	return dst, nil
}

// growFrame returns dst resized to hold a frame with an n-byte payload,
// reallocating only when capacity is short.
func growFrame(dst []byte, n int) []byte {
	need := headerSize + n
	if cap(dst) < need {
		return make([]byte, need)
	}
	return dst[:need]
}

// encodeHelloOK fills buf with a complete helloOK frame.
func encodeHelloOK(buf *[headerSize + helloOKSize]byte, info HelloInfo) {
	putHeader(buf[:], frameHelloOK, helloOKSize)
	p := buf[headerSize:]
	binary.LittleEndian.PutUint32(p[0:], uint32(info.Racks))
	binary.LittleEndian.PutUint32(p[4:], uint32(info.B))
	binary.LittleEndian.PutUint64(p[8:], math.Float64bits(info.Alpha))
	binary.LittleEndian.PutUint64(p[16:], info.Served)
}

// decodeHelloOK parses a helloOK payload.
func decodeHelloOK(p []byte) (HelloInfo, error) {
	if len(p) != helloOKSize {
		return HelloInfo{}, fmt.Errorf("engine: helloOK payload is %d bytes, want %d", len(p), helloOKSize)
	}
	return HelloInfo{
		Racks:  int(binary.LittleEndian.Uint32(p[0:])),
		B:      int(binary.LittleEndian.Uint32(p[4:])),
		Alpha:  math.Float64frombits(binary.LittleEndian.Uint64(p[8:])),
		Served: binary.LittleEndian.Uint64(p[16:]),
	}, nil
}

// encodeResult fills buf with a complete result frame.
func encodeResult(buf *[headerSize + resultSize]byte, r *BatchResult) {
	putHeader(buf[:], frameResult, resultSize)
	p := buf[headerSize:]
	binary.LittleEndian.PutUint64(p[0:], r.Served)
	binary.LittleEndian.PutUint64(p[8:], math.Float64bits(r.Routing))
	binary.LittleEndian.PutUint64(p[16:], math.Float64bits(r.Reconfig))
	binary.LittleEndian.PutUint32(p[24:], r.Adds)
	binary.LittleEndian.PutUint32(p[28:], r.Removals)
	binary.LittleEndian.PutUint32(p[32:], r.MatchingSize)
}

// decodeResult parses a result payload into res.
func decodeResult(p []byte, res *BatchResult) error {
	if len(p) != resultSize {
		return fmt.Errorf("engine: result payload is %d bytes, want %d", len(p), resultSize)
	}
	res.Served = binary.LittleEndian.Uint64(p[0:])
	res.Routing = math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
	res.Reconfig = math.Float64frombits(binary.LittleEndian.Uint64(p[16:]))
	res.Adds = binary.LittleEndian.Uint32(p[24:])
	res.Removals = binary.LittleEndian.Uint32(p[28:])
	res.MatchingSize = binary.LittleEndian.Uint32(p[32:])
	return nil
}

// appendErrorFrame appends a complete error frame, truncating the message
// to fit its u16 length.
func appendErrorFrame(dst []byte, msg string) []byte {
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	n := 2 + len(msg)
	dst = growFrame(dst, n)
	putHeader(dst, frameError, n)
	p := dst[headerSize:]
	binary.LittleEndian.PutUint16(p, uint16(len(msg)))
	copy(p[2:], msg)
	return dst
}

// decodeError parses an error payload into a Go error.
func decodeError(p []byte) error {
	if len(p) < 2 {
		return fmt.Errorf("engine: truncated error frame (%d bytes)", len(p))
	}
	n := int(binary.LittleEndian.Uint16(p))
	if 2+n != len(p) {
		return fmt.Errorf("engine: error frame declares %d message bytes, carries %d", n, len(p)-2)
	}
	return fmt.Errorf("engine: remote error: %s", p[2:2+n])
}

// readFrame reads one frame into *buf (grown once, then reused),
// returning the type and the payload slice aliasing *buf. A payload
// larger than maxFramePayload is rejected before any of it is read.
func readFrame(br *bufio.Reader, buf *[]byte) (typ byte, payload []byte, err error) {
	// The header is read into the reused payload buffer (and parsed
	// before the payload overwrites it): a local header array would
	// escape through the io.ReadFull interface call and cost one heap
	// allocation per frame.
	if cap(*buf) < headerSize {
		*buf = make([]byte, headerSize)
	}
	hdr := (*buf)[:headerSize]
	if _, err := io.ReadFull(br, hdr); err != nil {
		return 0, nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr))
	typ = hdr[4]
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("engine: frame payload of %d bytes exceeds limit %d", n, maxFramePayload)
	}
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	payload = (*buf)[:n]
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("engine: truncated frame (want %d payload bytes): %w", n, err)
	}
	return typ, payload, nil
}
