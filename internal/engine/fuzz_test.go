package engine

import (
	"bufio"
	"bytes"
	"testing"

	"obm/internal/trace"
)

// FuzzReadFrame feeds arbitrary bytes to the ingest framing layer: a
// hostile or corrupt peer must always produce a clean error (or a valid
// frame), never a panic or an attacker-sized allocation. The read buffer
// is checked against maxFramePayload after every call — the length prefix
// is attacker-controlled and must never balloon the reused buffer.
func FuzzReadFrame(f *testing.F) {
	hello, err := appendHello(nil, "live")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(hello)
	batch, err := appendBatch(nil, []trace.Request{{Src: 0, Dst: 1}, {Src: 3, Dst: 2}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(batch)
	f.Add(append(append([]byte{}, hello...), batch...))
	// Declared length far beyond the actual bytes.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x02, 0x00})
	// Zero-length payload.
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		for {
			typ, payload, err := readFrame(br, &buf)
			if cap(buf) > maxFramePayload {
				t.Fatalf("read buffer grew to %d, cap is %d", cap(buf), maxFramePayload)
			}
			if err != nil {
				return
			}
			if len(payload) > maxFramePayload {
				t.Fatalf("readFrame returned %d-byte payload", len(payload))
			}
			// Exercise the payload decoders the client runs on engine
			// frames; they must be equally panic-free.
			switch typ {
			case frameHelloOK:
				decodeHelloOK(payload)
			case frameResult:
				var res BatchResult
				decodeResult(payload, &res)
			case frameError:
				decodeError(payload)
			}
		}
	})
}
