package engine

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"obm/internal/core"
	"obm/internal/graph"
	"obm/internal/obs"
	"obm/internal/sim"
	"obm/internal/trace"
)

// SessionConfig describes one live matching session: a datacenter shape
// (racks, fat-tree metric), an algorithm instance and its parameters.
// The zero values of Alg, Alpha and Shards mean the paper defaults
// (r-bma, α = 30, one plane).
type SessionConfig struct {
	// ID names the session; empty lets the engine assign "s1", "s2", ….
	ID string `json:"id,omitempty"`
	// Racks is the number of racks (fat-tree leaves); requests address
	// racks in [0, Racks).
	Racks int `json:"racks"`
	// B is the matching degree cap per rack (per plane when sharded).
	B int `json:"b"`
	// Alg names the algorithm (sim registry; default "r-bma").
	Alg string `json:"alg,omitempty"`
	// Alpha is the reconfiguration cost (default 30, the figures' value).
	Alpha float64 `json:"alpha,omitempty"`
	// Seed seeds the randomized algorithms, playing the role a grid job's
	// repetition index plays: the instance is the one
	// sim.ScenarioSpec.BuildAlgorithm(Alg, B, Seed) builds, so an offline
	// replay with the same parameters reproduces the session bit for bit.
	Seed uint64 `json:"seed,omitempty"`
	// Shards, when > 1, runs the algorithm as that many independent switch
	// planes (core.Sharded), exactly like a grid scenario with Shards set.
	Shards int `json:"shards,omitempty"`
}

// withDefaults fills the optional fields.
func (c SessionConfig) withDefaults() SessionConfig {
	if c.Alg == "" {
		c.Alg = "r-bma"
	}
	if c.Alpha == 0 {
		c.Alpha = 30
	}
	return c
}

// spec maps the session onto a scenario spec so algorithm construction,
// sharding and seeding reuse the grid's registry verbatim. The family
// fields are irrelevant (the engine's workload arrives over the wire) but
// must parse; uniform with one request is the cheapest valid stand-in.
func (c SessionConfig) spec() sim.ScenarioSpec {
	return sim.ScenarioSpec{
		Name: "engine", Family: "uniform",
		Racks: c.Racks, Requests: 1,
		Alpha:  c.Alpha,
		Bs:     []int{c.B},
		Algs:   []string{c.Alg},
		Shards: c.Shards,
	}
}

// Validate reports whether the config can build a session.
func (c SessionConfig) Validate() error {
	c = c.withDefaults()
	if c.Racks < 2 {
		return fmt.Errorf("engine: racks = %d, need >= 2", c.Racks)
	}
	if c.B < 1 {
		return fmt.Errorf("engine: b = %d, need >= 1", c.B)
	}
	return c.spec().Validate()
}

// churnRing is how many per-batch churn events a session retains for the
// introspection stream: enough for a follower polling every few hundred
// milliseconds to never miss a batch at realistic batch rates, small
// enough (~64 KiB) to embed in every session.
const churnRing = 1024

// ChurnEvent is one batch's matching churn: what the batch did to the
// matching (edges added/removed, cost deltas) plus the cumulative
// counters after it. Events are numbered by batch (Seq, 1-based) and
// streamed as JSON deltas from the control plane's churn endpoint; the
// cumulative fields are the same Float64bits-exact values the wire's
// result frames carry, so a churn stream is a faithful decomposition of
// the session's cost curve.
type ChurnEvent struct {
	Seq           uint64  `json:"seq"`
	Requests      uint32  `json:"requests"`
	Adds          uint32  `json:"adds"`
	Removals      uint32  `json:"removals"`
	RoutingDelta  float64 `json:"routing_delta"`
	ReconfigDelta float64 `json:"reconfig_delta"`
	Served        uint64  `json:"served"`
	Routing       float64 `json:"routing_cost"`
	Reconfig      float64 `json:"reconfig_cost"`
	MatchingSize  uint32  `json:"matching_size"`
	UnixNano      int64   `json:"unix_nano"`
}

// Session is one live matching instance: an algorithm plus the shared
// incremental accumulator (sim.Incremental), a request compiler bound to
// the session's metric, and its observability (latency histogram, churn
// ring, per-plane served counters). All matching mutation happens under
// mu; the binary ingest path reuses the session's scratch buffer so a
// warmed session serves batches without allocating — the observability
// writes are an atomic-or-mutexed update per *batch*, never per request,
// and engine_test.go pins the 0 allocs/op contract with them enabled.
type Session struct {
	id      string
	cfg     SessionConfig // defaults filled
	created time.Time
	metric  *graph.Metric
	idx     *trace.PairIndex

	mu          sync.Mutex
	inc         sim.Incremental
	batches     uint64
	scratch     []trace.CompiledReq
	planeServed []uint64 // per-plane served counts, nil unless Shards > 1

	// hist and churn lock themselves; like the batch counter they are
	// observability, not matching state, and start fresh after a restore.
	hist  obs.Histogram
	churn *obs.Ring[ChurnEvent]
}

// newSession builds a session from a validated, defaults-filled config.
func newSession(id string, cfg SessionConfig) (*Session, error) {
	alg, err := cfg.spec().BuildAlgorithm(cfg.Alg, cfg.B, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := &Session{
		id:      id,
		cfg:     cfg,
		created: time.Now(),
		metric:  graph.FatTreeRacks(cfg.Racks).Metric(),
		idx:     trace.SharedPairIndex(cfg.Racks),
		churn:   obs.NewRing[ChurnEvent](churnRing),
	}
	if cfg.Shards > 1 {
		s.planeServed = make([]uint64, cfg.Shards)
	}
	s.inc.Init(alg, cfg.Alpha)
	return s, nil
}

// ID returns the session's name.
func (s *Session) ID() string { return s.id }

// Config returns the session's defaults-filled config.
func (s *Session) Config() SessionConfig { return s.cfg }

// hello snapshots the fields of a helloOK frame.
func (s *Session) hello() HelloInfo {
	s.mu.Lock()
	served := uint64(s.inc.Counters().Served)
	s.mu.Unlock()
	return HelloInfo{Racks: s.cfg.Racks, B: s.cfg.B, Alpha: s.cfg.Alpha, Served: served}
}

// FeedBinary serves one wire-format batch: p is the pair array of a batch
// frame (count × 8 bytes, little-endian u32 rack pairs), already
// length-checked by the caller. The whole batch is validated before the
// first request is served, so an invalid batch leaves the session
// untouched. res is filled with the post-batch cumulative counters and
// the batch's matching deltas. Alloc-free once the scratch buffer has
// grown to the batch size.
func (s *Session) FeedBinary(p []byte, res *BatchResult) error {
	n := len(p) / 8
	racks := uint32(s.cfg.Racks)
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	if cap(s.scratch) < n {
		s.scratch = make([]trace.CompiledReq, n)
	}
	reqs := s.scratch[:n]
	for i := 0; i < n; i++ {
		u := binary.LittleEndian.Uint32(p[i*8:])
		v := binary.LittleEndian.Uint32(p[i*8+4:])
		if u >= racks || v >= racks {
			return fmt.Errorf("engine: request %d: pair (%d, %d) outside %d racks", i, u, v, racks)
		}
		if u == v {
			return fmt.Errorf("engine: request %d: self-pair (%d, %d)", i, u, v)
		}
		if u > v {
			u, v = v, u
		}
		iu, iv := int(u), int(v)
		reqs[i] = trace.CompiledReq{
			ID: s.idx.ID(iu, iv),
			U:  int32(u), V: int32(v),
			Dist: int32(s.metric.Dist(iu, iv)),
		}
	}
	s.countPlanes(reqs)
	before := s.inc.Counters()
	s.inc.FeedChunk(reqs)
	s.fill(res, before, start)
	s.hist.Observe(uint64(time.Since(start)))
	return nil
}

// countPlanes tallies per-plane served counts for sharded sessions.
// Requests are already canonicalized (U < V), so the owner is exactly
// core.Partition's int(U) % shards. Called after the whole batch
// validated — a rejected batch leaves the tallies untouched, matching
// the all-or-nothing serve contract.
func (s *Session) countPlanes(reqs []trace.CompiledReq) {
	if s.planeServed == nil {
		return
	}
	shards := len(s.planeServed)
	for i := range reqs {
		s.planeServed[int(reqs[i].U)%shards]++
	}
}

// ServeOne serves a single request (the HTTP path): endpoints in either
// order, validated like FeedBinary.
func (s *Session) ServeOne(u, v int, res *BatchResult) error {
	if u < 0 || v < 0 || u >= s.cfg.Racks || v >= s.cfg.Racks {
		return fmt.Errorf("engine: pair (%d, %d) outside %d racks", u, v, s.cfg.Racks)
	}
	if u == v {
		return fmt.Errorf("engine: self-pair (%d, %d)", u, v)
	}
	if u > v {
		u, v = v, u
	}
	req := trace.CompiledReq{
		ID: s.idx.ID(u, v),
		U:  int32(u), V: int32(v),
		Dist: int32(s.metric.Dist(u, v)),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	if s.planeServed != nil {
		s.planeServed[int(req.U)%len(s.planeServed)]++
	}
	before := s.inc.Counters()
	s.inc.Feed(req)
	s.fill(res, before, start)
	s.hist.Observe(uint64(time.Since(start)))
	return nil
}

// fill snapshots the post-batch cumulative counters into res, advances
// the batch count and appends the batch's churn event (computed against
// the pre-batch counters). Caller holds mu.
func (s *Session) fill(res *BatchResult, before sim.Counters, start time.Time) {
	c := s.inc.Counters()
	res.Served = uint64(c.Served)
	res.Routing = c.Routing
	res.Reconfig = c.Reconfig
	res.Adds = uint32(c.Adds - before.Adds)
	res.Removals = uint32(c.Removals - before.Removals)
	res.MatchingSize = uint32(s.inc.MatchingSize())
	s.batches++
	s.churn.Append(ChurnEvent{
		Seq:           s.batches,
		Requests:      uint32(c.Served - before.Served),
		Adds:          res.Adds,
		Removals:      res.Removals,
		RoutingDelta:  c.Routing - before.Routing,
		ReconfigDelta: c.Reconfig - before.Reconfig,
		Served:        res.Served,
		Routing:       res.Routing,
		Reconfig:      res.Reconfig,
		MatchingSize:  res.MatchingSize,
		UnixNano:      start.UnixNano(),
	})
}

// Churn returns the retained churn events with Seq > after, oldest
// first. A reader that fell behind the ring resumes at the oldest
// retained event (its Seq tells it how much it missed).
func (s *Session) Churn(after uint64) []ChurnEvent {
	ev, _ := s.churn.Since(after)
	return ev
}

// LatencySummary reports a session's per-batch serve latency distribution
// (microseconds, digested from the shared obs.Histogram — the same
// distribution /metrics exposes in seconds).
type LatencySummary struct {
	Batches uint64  `json:"batches"`
	P50us   float64 `json:"p50_us"`
	P90us   float64 `json:"p90_us"`
	P99us   float64 `json:"p99_us"`
	P999us  float64 `json:"p999_us"`
	MaxUs   float64 `json:"max_us"`
	MeanUs  float64 `json:"mean_us"`
}

// PlaneStatus is one switch plane of a sharded session: how many of the
// session's requests it owned and its current matching size.
type PlaneStatus struct {
	Plane        int    `json:"plane"`
	Served       uint64 `json:"served"`
	MatchingSize int    `json:"matching_size"`
}

// SessionStatus is one session's externally visible state: config,
// cumulative counters (the same numbers the wire's result frames carry),
// serve-latency quantiles, and per-plane counters when sharded.
type SessionStatus struct {
	ID           string         `json:"id"`
	Config       SessionConfig  `json:"config"`
	CreatedAt    time.Time      `json:"created_at"`
	Served       int64          `json:"served"`
	Routing      float64        `json:"routing_cost"`
	Reconfig     float64        `json:"reconfig_cost"`
	Total        float64        `json:"total_cost"`
	Adds         int            `json:"adds"`
	Removals     int            `json:"removals"`
	MatchingSize int            `json:"matching_size"`
	Latency      LatencySummary `json:"latency"`
	Planes       []PlaneStatus  `json:"planes,omitempty"`
}

// Latency digests the session's per-batch serve latency (nanoseconds).
func (s *Session) Latency() obs.Summary { return s.hist.Summary() }

// Status snapshots the session.
func (s *Session) Status() SessionStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.inc.Counters()
	lat := s.hist.Summary()
	us := func(ns uint64) float64 { return float64(ns) / 1e3 }
	st := SessionStatus{
		ID:           s.id,
		Config:       s.cfg,
		CreatedAt:    s.created,
		Served:       c.Served,
		Routing:      c.Routing,
		Reconfig:     c.Reconfig,
		Total:        c.Total(),
		Adds:         c.Adds,
		Removals:     c.Removals,
		MatchingSize: s.inc.MatchingSize(),
		Latency: LatencySummary{
			Batches: s.batches,
			P50us:   us(lat.P50),
			P90us:   us(lat.P90),
			P99us:   us(lat.P99),
			P999us:  us(lat.P999),
			MaxUs:   us(lat.Max),
			MeanUs:  lat.Mean / 1e3,
		},
	}
	if s.planeServed != nil {
		st.Planes = make([]PlaneStatus, len(s.planeServed))
		sh, _ := s.inc.Algorithm().(*core.Sharded)
		for p := range st.Planes {
			st.Planes[p] = PlaneStatus{Plane: p, Served: s.planeServed[p]}
			if sh != nil {
				st.Planes[p].MatchingSize = sh.Shard(p).MatchingSize()
			}
		}
	}
	return st
}
