package engine

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"obm/internal/graph"
	"obm/internal/sim"
	"obm/internal/stats"
	"obm/internal/trace"
)

// SessionConfig describes one live matching session: a datacenter shape
// (racks, fat-tree metric), an algorithm instance and its parameters.
// The zero values of Alg, Alpha and Shards mean the paper defaults
// (r-bma, α = 30, one plane).
type SessionConfig struct {
	// ID names the session; empty lets the engine assign "s1", "s2", ….
	ID string `json:"id,omitempty"`
	// Racks is the number of racks (fat-tree leaves); requests address
	// racks in [0, Racks).
	Racks int `json:"racks"`
	// B is the matching degree cap per rack (per plane when sharded).
	B int `json:"b"`
	// Alg names the algorithm (sim registry; default "r-bma").
	Alg string `json:"alg,omitempty"`
	// Alpha is the reconfiguration cost (default 30, the figures' value).
	Alpha float64 `json:"alpha,omitempty"`
	// Seed seeds the randomized algorithms, playing the role a grid job's
	// repetition index plays: the instance is the one
	// sim.ScenarioSpec.BuildAlgorithm(Alg, B, Seed) builds, so an offline
	// replay with the same parameters reproduces the session bit for bit.
	Seed uint64 `json:"seed,omitempty"`
	// Shards, when > 1, runs the algorithm as that many independent switch
	// planes (core.Sharded), exactly like a grid scenario with Shards set.
	Shards int `json:"shards,omitempty"`
}

// withDefaults fills the optional fields.
func (c SessionConfig) withDefaults() SessionConfig {
	if c.Alg == "" {
		c.Alg = "r-bma"
	}
	if c.Alpha == 0 {
		c.Alpha = 30
	}
	return c
}

// spec maps the session onto a scenario spec so algorithm construction,
// sharding and seeding reuse the grid's registry verbatim. The family
// fields are irrelevant (the engine's workload arrives over the wire) but
// must parse; uniform with one request is the cheapest valid stand-in.
func (c SessionConfig) spec() sim.ScenarioSpec {
	return sim.ScenarioSpec{
		Name: "engine", Family: "uniform",
		Racks: c.Racks, Requests: 1,
		Alpha:  c.Alpha,
		Bs:     []int{c.B},
		Algs:   []string{c.Alg},
		Shards: c.Shards,
	}
}

// Validate reports whether the config can build a session.
func (c SessionConfig) Validate() error {
	c = c.withDefaults()
	if c.Racks < 2 {
		return fmt.Errorf("engine: racks = %d, need >= 2", c.Racks)
	}
	if c.B < 1 {
		return fmt.Errorf("engine: b = %d, need >= 1", c.B)
	}
	return c.spec().Validate()
}

// Session is one live matching instance: an algorithm plus the shared
// incremental accumulator (sim.Incremental), a request compiler bound to
// the session's metric, and a latency histogram. All mutation happens
// under mu; the binary ingest path reuses the session's scratch buffer so
// a warmed session serves batches without allocating.
type Session struct {
	id      string
	cfg     SessionConfig // defaults filled
	created time.Time
	metric  *graph.Metric
	idx     *trace.PairIndex

	mu      sync.Mutex
	inc     sim.Incremental
	hist    stats.Histogram
	batches uint64
	scratch []trace.CompiledReq
}

// newSession builds a session from a validated, defaults-filled config.
func newSession(id string, cfg SessionConfig) (*Session, error) {
	alg, err := cfg.spec().BuildAlgorithm(cfg.Alg, cfg.B, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := &Session{
		id:      id,
		cfg:     cfg,
		created: time.Now(),
		metric:  graph.FatTreeRacks(cfg.Racks).Metric(),
		idx:     trace.SharedPairIndex(cfg.Racks),
	}
	s.inc.Init(alg, cfg.Alpha)
	return s, nil
}

// ID returns the session's name.
func (s *Session) ID() string { return s.id }

// Config returns the session's defaults-filled config.
func (s *Session) Config() SessionConfig { return s.cfg }

// hello snapshots the fields of a helloOK frame.
func (s *Session) hello() HelloInfo {
	s.mu.Lock()
	served := uint64(s.inc.Counters().Served)
	s.mu.Unlock()
	return HelloInfo{Racks: s.cfg.Racks, B: s.cfg.B, Alpha: s.cfg.Alpha, Served: served}
}

// FeedBinary serves one wire-format batch: p is the pair array of a batch
// frame (count × 8 bytes, little-endian u32 rack pairs), already
// length-checked by the caller. The whole batch is validated before the
// first request is served, so an invalid batch leaves the session
// untouched. res is filled with the post-batch cumulative counters and
// the batch's matching deltas. Alloc-free once the scratch buffer has
// grown to the batch size.
func (s *Session) FeedBinary(p []byte, res *BatchResult) error {
	n := len(p) / 8
	racks := uint32(s.cfg.Racks)
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	if cap(s.scratch) < n {
		s.scratch = make([]trace.CompiledReq, n)
	}
	reqs := s.scratch[:n]
	for i := 0; i < n; i++ {
		u := binary.LittleEndian.Uint32(p[i*8:])
		v := binary.LittleEndian.Uint32(p[i*8+4:])
		if u >= racks || v >= racks {
			return fmt.Errorf("engine: request %d: pair (%d, %d) outside %d racks", i, u, v, racks)
		}
		if u == v {
			return fmt.Errorf("engine: request %d: self-pair (%d, %d)", i, u, v)
		}
		if u > v {
			u, v = v, u
		}
		iu, iv := int(u), int(v)
		reqs[i] = trace.CompiledReq{
			ID: s.idx.ID(iu, iv),
			U:  int32(u), V: int32(v),
			Dist: int32(s.metric.Dist(iu, iv)),
		}
	}
	adds, removals := s.inc.FeedChunk(reqs)
	s.fill(res, adds, removals)
	s.batches++
	s.hist.Record(uint64(time.Since(start)))
	return nil
}

// ServeOne serves a single request (the HTTP path): endpoints in either
// order, validated like FeedBinary.
func (s *Session) ServeOne(u, v int, res *BatchResult) error {
	if u < 0 || v < 0 || u >= s.cfg.Racks || v >= s.cfg.Racks {
		return fmt.Errorf("engine: pair (%d, %d) outside %d racks", u, v, s.cfg.Racks)
	}
	if u == v {
		return fmt.Errorf("engine: self-pair (%d, %d)", u, v)
	}
	if u > v {
		u, v = v, u
	}
	req := trace.CompiledReq{
		ID: s.idx.ID(u, v),
		U:  int32(u), V: int32(v),
		Dist: int32(s.metric.Dist(u, v)),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	before := s.inc.Counters()
	s.inc.Feed(req)
	after := s.inc.Counters()
	s.fill(res, after.Adds-before.Adds, after.Removals-before.Removals)
	s.batches++
	s.hist.Record(uint64(time.Since(start)))
	return nil
}

// fill snapshots the cumulative counters into res. Caller holds mu.
func (s *Session) fill(res *BatchResult, adds, removals int) {
	c := s.inc.Counters()
	res.Served = uint64(c.Served)
	res.Routing = c.Routing
	res.Reconfig = c.Reconfig
	res.Adds = uint32(adds)
	res.Removals = uint32(removals)
	res.MatchingSize = uint32(s.inc.MatchingSize())
}

// LatencySummary reports a session's per-batch serve latency distribution
// (microseconds, from the alloc-free log2 histogram in internal/stats).
type LatencySummary struct {
	Batches uint64  `json:"batches"`
	P50us   float64 `json:"p50_us"`
	P90us   float64 `json:"p90_us"`
	P99us   float64 `json:"p99_us"`
	P999us  float64 `json:"p999_us"`
	MaxUs   float64 `json:"max_us"`
	MeanUs  float64 `json:"mean_us"`
}

// SessionStatus is one session's externally visible state: config,
// cumulative counters (the same numbers the wire's result frames carry)
// and serve-latency quantiles.
type SessionStatus struct {
	ID           string         `json:"id"`
	Config       SessionConfig  `json:"config"`
	CreatedAt    time.Time      `json:"created_at"`
	Served       int64          `json:"served"`
	Routing      float64        `json:"routing_cost"`
	Reconfig     float64        `json:"reconfig_cost"`
	Total        float64        `json:"total_cost"`
	Adds         int            `json:"adds"`
	Removals     int            `json:"removals"`
	MatchingSize int            `json:"matching_size"`
	Latency      LatencySummary `json:"latency"`
}

// Status snapshots the session.
func (s *Session) Status() SessionStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.inc.Counters()
	us := func(ns uint64) float64 { return float64(ns) / 1e3 }
	return SessionStatus{
		ID:           s.id,
		Config:       s.cfg,
		CreatedAt:    s.created,
		Served:       c.Served,
		Routing:      c.Routing,
		Reconfig:     c.Reconfig,
		Total:        c.Total(),
		Adds:         c.Adds,
		Removals:     c.Removals,
		MatchingSize: s.inc.MatchingSize(),
		Latency: LatencySummary{
			Batches: s.batches,
			P50us:   us(s.hist.Quantile(0.5)),
			P90us:   us(s.hist.Quantile(0.9)),
			P99us:   us(s.hist.Quantile(0.99)),
			P999us:  us(s.hist.Quantile(0.999)),
			MaxUs:   us(s.hist.Max()),
			MeanUs:  s.hist.Mean() / 1e3,
		},
	}
}
