package obm

// Smoke tests for the runnable entry points: every binary under cmd/ and
// every example under examples/ must build, run with tiny inputs, exit
// zero, and print well-formed output. These catch the classic failure mode
// of library-only refactors — internal packages pass their tests while the
// binaries no longer compile or crash at startup.

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// buildBinary compiles a main package into t's temp dir and returns the
// binary path.
func buildBinary(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, "./"+pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./%s failed: %v\n%s", pkg, err, out)
	}
	return bin
}

// run executes the binary and returns its stdout+stderr, failing the test
// on a non-zero exit.
func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s failed: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestCmdBmatchSmoke(t *testing.T) {
	bin := buildBinary(t, "cmd/bmatch")
	for _, alg := range []string{"r-bma", "bma", "oblivious", "so-bma"} {
		out := run(t, bin, "-alg", alg, "-racks", "12", "-requests", "2000", "-b", "3")
		for _, want := range []string{"trace:", "algorithm:", "routing cost:"} {
			if !strings.Contains(out, want) {
				t.Errorf("-alg %s: output missing %q:\n%s", alg, want, out)
			}
		}
	}
}

func TestCmdTracegenSmoke(t *testing.T) {
	bin := buildBinary(t, "cmd/tracegen")
	csv := filepath.Join(t.TempDir(), "trace.csv")
	out := run(t, bin, "-workload", "facebook-database", "-racks", "10", "-requests", "500", "-out", csv)
	if !strings.Contains(out, "500") {
		t.Errorf("tracegen summary missing request count:\n%s", out)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 500 {
		t.Fatalf("trace CSV has %d lines, want >= 500", len(lines))
	}
	// The generated trace must round-trip through the analyzer.
	out = run(t, bin, "-analyze", csv)
	if !strings.Contains(out, "requests") {
		t.Errorf("analyze output malformed:\n%s", out)
	}
}

func TestCmdExperimentsSmoke(t *testing.T) {
	bin := buildBinary(t, "cmd/experiments")
	outdir := t.TempDir()
	out := run(t, bin, "-figure", "fig1a", "-scale", "0.01", "-reps", "1", "-outdir", outdir, "-chart=false")
	if !strings.Contains(out, "fig1a") {
		t.Errorf("experiments output missing figure id:\n%s", out)
	}
	entries, err := filepath.Glob(filepath.Join(outdir, "*"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("experiments wrote no output files in %s (err=%v)", outdir, err)
	}
	for _, f := range entries {
		info, err := os.Stat(f)
		if err != nil || info.Size() == 0 {
			t.Errorf("output file %s is empty or unreadable (err=%v)", f, err)
		}
	}
}

func TestCmdExperimentsGridSmoke(t *testing.T) {
	bin := buildBinary(t, "cmd/experiments")
	out := run(t, bin, "grid", "-list")
	for _, want := range []string{"scenarios:", "families:", "diurnal", "hotspot", "tenant-mix", "algorithms:"} {
		if !strings.Contains(out, want) {
			t.Errorf("grid -list output missing %q:\n%s", want, out)
		}
	}
	outdir := t.TempDir()
	out = run(t, bin, "grid", "-scenario", "hotspot-migration,diurnal-swing",
		"-scale", "0.02", "-reps", "1", "-workers", "2", "-outdir", outdir,
		"-format", "both", "-progress=false")
	for _, want := range []string{"hotspot-migration", "diurnal-swing", "grid:"} {
		if !strings.Contains(out, want) {
			t.Errorf("grid output missing %q:\n%s", want, out)
		}
	}
	for _, name := range []string{"grid.csv", "grid.json"} {
		info, err := os.Stat(filepath.Join(outdir, name))
		if err != nil || info.Size() == 0 {
			t.Errorf("grid output %s missing or empty (err=%v)", name, err)
		}
	}
	// A JSON scenario file must drive the same path.
	specFile := filepath.Join(t.TempDir(), "specs.json")
	spec := `[{"name":"tiny","family":"uniform","racks":8,"requests":2000,"seed":1,"bs":[2],"reps":1,"algs":["bma"]}]`
	if err := os.WriteFile(specFile, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out = run(t, bin, "grid", "-scenarios", specFile, "-outdir", t.TempDir(), "-progress=false")
	if !strings.Contains(out, "tiny") {
		t.Errorf("grid -scenarios output missing scenario name:\n%s", out)
	}
}

// TestCmdExperimentsStoreSmoke drives the durable-run workflow through
// the CLI: two shard stores, a merge, a no-op resume of the merged store,
// and a rendered report.
func TestCmdExperimentsStoreSmoke(t *testing.T) {
	bin := buildBinary(t, "cmd/experiments")
	base := t.TempDir()
	gridArgs := func(extra ...string) []string {
		return append([]string{"grid", "-scenario", "uniform-baseline", "-scale", "0.02",
			"-outdir", filepath.Join(base, "out"), "-progress=false"}, extra...)
	}
	run(t, bin, gridArgs("-store", filepath.Join(base, "s0"), "-shard", "0/2")...)
	run(t, bin, gridArgs("-store", filepath.Join(base, "s1"), "-shard", "1/2")...)

	out := run(t, bin, "merge", "-out", filepath.Join(base, "m"),
		filepath.Join(base, "s0"), filepath.Join(base, "s1"))
	if !strings.Contains(out, "0 missing") {
		t.Errorf("merge left jobs missing:\n%s", out)
	}
	for _, name := range []string{"manifest.json", "jobs.jsonl", "summary.csv", "report.md"} {
		info, err := os.Stat(filepath.Join(base, "m", name))
		if err != nil || info.Size() == 0 {
			t.Errorf("merged store %s missing or empty (err=%v)", name, err)
		}
	}

	// Resuming the complete merged store must execute nothing new.
	out = run(t, bin, gridArgs("-store", filepath.Join(base, "m"), "-resume")...)
	if !strings.Contains(out, "resuming") {
		t.Errorf("resume did not report recorded jobs:\n%s", out)
	}

	out = run(t, bin, "report", "-store", filepath.Join(base, "m"), "-stdout")
	for _, want := range []string{"# Run report:", "## uniform-baseline", "| r-bma |"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}

	// Guard rails: clobbering without -resume, and mismatched resumes.
	cmd := exec.Command(bin, gridArgs("-store", filepath.Join(base, "m"))...)
	if msg, err := cmd.CombinedOutput(); err == nil {
		t.Errorf("re-running into an existing store without -resume succeeded:\n%s", msg)
	}
	cmd = exec.Command(bin, gridArgs("-store", filepath.Join(base, "m"), "-resume", "-scale", "0.03")...)
	if msg, err := cmd.CombinedOutput(); err == nil || !strings.Contains(string(msg), "different grid") {
		t.Errorf("resume with different scale not rejected (err=%v):\n%s", err, msg)
	}
}

func TestExamplesSmoke(t *testing.T) {
	examples, err := filepath.Glob("examples/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(examples) == 0 {
		t.Fatal("no examples found")
	}
	for _, dir := range examples {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			t.Parallel()
			bin := buildBinary(t, dir)
			out := run(t, bin)
			if len(strings.TrimSpace(out)) == 0 {
				t.Fatal("example produced no output")
			}
			if strings.Contains(strings.ToLower(out), "panic") {
				t.Fatalf("example output mentions a panic:\n%s", out)
			}
		})
	}
}

// TestCmdTracegenStreamSmoke: -stream must write byte-identical output to
// the materialized path for the same parameters, in both formats.
func TestCmdTracegenStreamSmoke(t *testing.T) {
	bin := buildBinary(t, "cmd/tracegen")
	dir := t.TempDir()
	for _, workload := range []string{"uniform", "facebook-hadoop"} {
		mat := filepath.Join(dir, workload+"-mat.csv")
		str := filepath.Join(dir, workload+"-str.csv")
		args := []string{"-workload", workload, "-racks", "10", "-requests", "800", "-seed", "3"}
		run(t, bin, append(args, "-out", mat)...)
		out := run(t, bin, append(args, "-stream", "-out", str)...)
		if !strings.Contains(out, "streamed") {
			t.Errorf("%s: stream mode did not announce itself:\n%s", workload, out)
		}
		a, err := os.ReadFile(mat)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(str)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s: streamed CSV differs from materialized", workload)
		}
	}
	// Binary stream mode round-trips through the analyzer-facing reader
	// (covered in internal/trace tests); here just check it writes.
	binOut := filepath.Join(dir, "stream.bin")
	run(t, bin, "-workload", "uniform", "-racks", "8", "-requests", "500", "-stream", "-format", "bin", "-out", binOut)
	if info, err := os.Stat(binOut); err != nil || info.Size() != 4+16+500*8 {
		t.Errorf("streamed binary size/stat wrong: %v err=%v", info, err)
	}
}

// TestCmdExperimentsWorkerSmoke checks the worker subcommand's wiring:
// it must refuse to start without a coordinator and print its usage.
// The full coordinator+fleet path is covered by internal/work's
// acceptance test and scripts/smoke_distributed.sh in CI.
func TestCmdExperimentsWorkerSmoke(t *testing.T) {
	bin := buildBinary(t, "cmd/experiments")
	cmd := exec.Command(bin, "worker")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("worker without -coordinator succeeded:\n%s", out)
	}
	for _, want := range []string{"-coordinator is required", "leases shards"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("worker usage output missing %q:\n%s", want, out)
		}
	}
}

// TestCmdExperimentsServeSmoke boots the experiment service, submits a
// tiny grid over HTTP, polls it to completion, fetches the summary, and
// verifies the second submission is a cache hit.
func TestCmdExperimentsServeSmoke(t *testing.T) {
	bin := buildBinary(t, "cmd/experiments")
	root := t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cmd := exec.Command(bin, "serve", "-addr", addr, "-store-root", filepath.Join(root, "serve"))
	var logBuf strings.Builder
	cmd.Stderr = &logBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}()

	baseURL := "http://" + addr
	waitUp := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(baseURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(waitUp) {
			t.Fatalf("service never came up:\n%s", logBuf.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	spec := `[{"name":"smoke","family":"uniform","racks":8,"requests":2000,"seed":1,"bs":[2],"reps":1,"algs":["bma"]}]`
	post := func() (int, string) {
		resp, err := http.Post(baseURL+"/api/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		io.Copy(&sb, resp.Body)
		return resp.StatusCode, sb.String()
	}
	code, body := post()
	if code != 202 {
		t.Fatalf("submit: status %d, body %s", code, body)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(baseURL + "/api/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var js struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&js)
		resp.Body.Close()
		if js.State == "done" {
			break
		}
		if js.State == "failed" {
			t.Fatalf("job failed: %s", js.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished; log:\n%s", logBuf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(baseURL + "/api/v1/jobs/" + st.ID + "/summary.csv")
	if err != nil {
		t.Fatal(err)
	}
	var csv strings.Builder
	io.Copy(&csv, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(csv.String(), "smoke,uniform,bma,2") {
		t.Fatalf("summary.csv: status %d\n%s", resp.StatusCode, csv.String())
	}

	if code, body := post(); code != 200 || !strings.Contains(body, `"cached": true`) {
		t.Fatalf("second submit: status %d, body %s — want cached hit", code, body)
	}
}
