package obm

// Smoke tests for the runnable entry points: every binary under cmd/ and
// every example under examples/ must build, run with tiny inputs, exit
// zero, and print well-formed output. These catch the classic failure mode
// of library-only refactors — internal packages pass their tests while the
// binaries no longer compile or crash at startup.

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// buildBinary compiles a main package into t's temp dir and returns the
// binary path.
func buildBinary(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, "./"+pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./%s failed: %v\n%s", pkg, err, out)
	}
	return bin
}

// run executes the binary and returns its stdout+stderr, failing the test
// on a non-zero exit.
func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s failed: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestCmdBmatchSmoke(t *testing.T) {
	bin := buildBinary(t, "cmd/bmatch")
	for _, alg := range []string{"r-bma", "bma", "oblivious", "so-bma"} {
		out := run(t, bin, "-alg", alg, "-racks", "12", "-requests", "2000", "-b", "3")
		for _, want := range []string{"trace:", "algorithm:", "routing cost:"} {
			if !strings.Contains(out, want) {
				t.Errorf("-alg %s: output missing %q:\n%s", alg, want, out)
			}
		}
	}
}

func TestCmdTracegenSmoke(t *testing.T) {
	bin := buildBinary(t, "cmd/tracegen")
	csv := filepath.Join(t.TempDir(), "trace.csv")
	out := run(t, bin, "-workload", "facebook-database", "-racks", "10", "-requests", "500", "-out", csv)
	if !strings.Contains(out, "500") {
		t.Errorf("tracegen summary missing request count:\n%s", out)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 500 {
		t.Fatalf("trace CSV has %d lines, want >= 500", len(lines))
	}
	// The generated trace must round-trip through the analyzer.
	out = run(t, bin, "-analyze", csv)
	if !strings.Contains(out, "requests") {
		t.Errorf("analyze output malformed:\n%s", out)
	}
}

func TestCmdExperimentsSmoke(t *testing.T) {
	bin := buildBinary(t, "cmd/experiments")
	outdir := t.TempDir()
	out := run(t, bin, "-figure", "fig1a", "-scale", "0.01", "-reps", "1", "-outdir", outdir, "-chart=false")
	if !strings.Contains(out, "fig1a") {
		t.Errorf("experiments output missing figure id:\n%s", out)
	}
	entries, err := filepath.Glob(filepath.Join(outdir, "*"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("experiments wrote no output files in %s (err=%v)", outdir, err)
	}
	for _, f := range entries {
		info, err := os.Stat(f)
		if err != nil || info.Size() == 0 {
			t.Errorf("output file %s is empty or unreadable (err=%v)", f, err)
		}
	}
}

func TestCmdExperimentsGridSmoke(t *testing.T) {
	bin := buildBinary(t, "cmd/experiments")
	out := run(t, bin, "grid", "-list")
	for _, want := range []string{"scenarios:", "families:", "diurnal", "hotspot", "tenant-mix", "algorithms:"} {
		if !strings.Contains(out, want) {
			t.Errorf("grid -list output missing %q:\n%s", want, out)
		}
	}
	outdir := t.TempDir()
	out = run(t, bin, "grid", "-scenario", "hotspot-migration,diurnal-swing",
		"-scale", "0.02", "-reps", "1", "-workers", "2", "-outdir", outdir,
		"-format", "both", "-progress=false")
	for _, want := range []string{"hotspot-migration", "diurnal-swing", "grid:"} {
		if !strings.Contains(out, want) {
			t.Errorf("grid output missing %q:\n%s", want, out)
		}
	}
	for _, name := range []string{"grid.csv", "grid.json"} {
		info, err := os.Stat(filepath.Join(outdir, name))
		if err != nil || info.Size() == 0 {
			t.Errorf("grid output %s missing or empty (err=%v)", name, err)
		}
	}
	// A JSON scenario file must drive the same path.
	specFile := filepath.Join(t.TempDir(), "specs.json")
	spec := `[{"name":"tiny","family":"uniform","racks":8,"requests":2000,"seed":1,"bs":[2],"reps":1,"algs":["bma"]}]`
	if err := os.WriteFile(specFile, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out = run(t, bin, "grid", "-scenarios", specFile, "-outdir", t.TempDir(), "-progress=false")
	if !strings.Contains(out, "tiny") {
		t.Errorf("grid -scenarios output missing scenario name:\n%s", out)
	}
}

func TestExamplesSmoke(t *testing.T) {
	examples, err := filepath.Glob("examples/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(examples) == 0 {
		t.Fatal("no examples found")
	}
	for _, dir := range examples {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			t.Parallel()
			bin := buildBinary(t, dir)
			out := run(t, bin)
			if len(strings.TrimSpace(out)) == 0 {
				t.Fatal("example produced no output")
			}
			if strings.Contains(strings.ToLower(out), "panic") {
				t.Fatalf("example output mentions a panic:\n%s", out)
			}
		})
	}
}
