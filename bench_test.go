package obm

// Benchmark harness: one benchmark per sub-figure of the paper's evaluation
// (Figures 1–4, each a/b/c) plus ablation benchmarks for the reproduction's
// design choices (cache policy, lazy vs eager removal, α, predictions; see
// README.md). Figure benchmarks replay a scaled-down workload per iteration
// and report the quantities the paper plots as custom metrics:
//
//	routing_cost   cumulative routing cost of R-BMA at the best b
//	vs_oblivious   R-BMA routing cost / oblivious routing cost (a-figures)
//	vs_bma         R-BMA routing cost / BMA routing cost
//	rbma_ms, bma_ms  decision-loop wall time (b-figures)
//
// Full-scale runs (paper request counts, 5 repetitions) are produced by
// cmd/experiments; these benchmarks use scale=0.02 so the whole suite runs
// in minutes while preserving the figures' qualitative shapes.

import (
	"fmt"
	"net"
	"testing"
	"time"

	"obm/internal/core"
	"obm/internal/engine"
	"obm/internal/figures"
	"obm/internal/flow"
	"obm/internal/graph"
	"obm/internal/matching"
	"obm/internal/paging"
	"obm/internal/sim"
	"obm/internal/stats"
	"obm/internal/trace"
)

const benchScale = 0.02

// runFigure executes one sub-figure experiment and reports its headline
// metrics.
func runFigure(b *testing.B, id string) {
	b.Helper()
	fig, err := figures.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg, specs, err := fig.Build(benchScale, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		res, err = sim.RunExperiment(cfg, specs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	finals := res.FinalRouting()
	bestB := cfg.Bs[len(cfg.Bs)-1]
	rb := finals[fmt.Sprintf("r-bma(b=%d)", bestB)]
	b.ReportMetric(rb, "routing_cost")
	if obl, ok := finals["oblivious(b=0)"]; ok && obl > 0 {
		b.ReportMetric(rb/obl, "vs_oblivious")
	}
	if bm, ok := finals[fmt.Sprintf("bma(b=%d)", bestB)]; ok && bm > 0 {
		b.ReportMetric(rb/bm, "vs_bma")
	}
	if so, ok := finals[fmt.Sprintf("so-bma(b=%d)", bestB)]; ok && so > 0 {
		b.ReportMetric(rb/so, "vs_sobma")
	}
	if fig.Metric == figures.ExecutionTime {
		for _, c := range res.Curves {
			if c.B != bestB {
				continue
			}
			ms := float64(c.Avg.Elapsed) / float64(time.Millisecond)
			switch c.Alg {
			case "r-bma":
				b.ReportMetric(ms, "rbma_ms")
			case "bma":
				b.ReportMetric(ms, "bma_ms")
			}
		}
	}
}

func BenchmarkFig1a(b *testing.B) { runFigure(b, "fig1a") }
func BenchmarkFig1b(b *testing.B) { runFigure(b, "fig1b") }
func BenchmarkFig1c(b *testing.B) { runFigure(b, "fig1c") }
func BenchmarkFig2a(b *testing.B) { runFigure(b, "fig2a") }
func BenchmarkFig2b(b *testing.B) { runFigure(b, "fig2b") }
func BenchmarkFig2c(b *testing.B) { runFigure(b, "fig2c") }
func BenchmarkFig3a(b *testing.B) { runFigure(b, "fig3a") }
func BenchmarkFig3b(b *testing.B) { runFigure(b, "fig3b") }
func BenchmarkFig3c(b *testing.B) { runFigure(b, "fig3c") }
func BenchmarkFig4a(b *testing.B) { runFigure(b, "fig4a") }
func BenchmarkFig4b(b *testing.B) { runFigure(b, "fig4b") }
func BenchmarkFig4c(b *testing.B) { runFigure(b, "fig4c") }

// --- Execution-time micro-benchmarks (the substance of sub-figures b) ---

func benchServe(b *testing.B, mk func() core.Algorithm, tr *trace.Trace) {
	b.Helper()
	alg := mk()
	b.ResetTimer()
	i := 0
	for n := 0; n < b.N; n++ {
		req := tr.Reqs[i]
		alg.Serve(int(req.Src), int(req.Dst))
		i++
		if i == tr.Len() {
			i = 0
			b.StopTimer()
			alg = mk() // avoid steady-state artifacts when wrapping
			b.StartTimer()
		}
	}
}

func serveWorkload(racks int) (*trace.Trace, core.CostModel) {
	top := graph.FatTreeRacks(racks)
	model := core.CostModel{Metric: top.Metric(), Alpha: figures.DefaultAlpha}
	p := trace.FacebookPreset(trace.Database, racks, 3)
	p.Requests = 200000
	tr, err := trace.FacebookStyle(p)
	if err != nil {
		panic(err)
	}
	return tr, model
}

func BenchmarkServeRBMA(b *testing.B) {
	tr, model := serveWorkload(100)
	for _, bb := range []int{6, 12, 18} {
		b.Run(fmt.Sprintf("b=%d", bb), func(b *testing.B) {
			benchServe(b, func() core.Algorithm {
				alg, _ := core.NewRBMA(100, bb, model, 1)
				return alg
			}, tr)
		})
	}
}

func BenchmarkServeBMA(b *testing.B) {
	tr, model := serveWorkload(100)
	for _, bb := range []int{6, 12, 18} {
		b.Run(fmt.Sprintf("b=%d", bb), func(b *testing.B) {
			benchServe(b, func() core.Algorithm {
				alg, _ := core.NewBMA(100, bb, model)
				return alg
			}, tr)
		})
	}
}

// BenchmarkReplayParallel measures multi-core replay scaling: one large-n
// uniform trace replayed through a multi-plane R-BMA (core.Sharded) with
// one worker goroutine per plane. The shards=1 case is the sequential
// single-plane baseline; higher shard counts fan the same trace out to
// per-plane workers (sim.RunSourceParallel), so the ns/op ratio between
// shards=1 and shards=8 is the end-to-end speedup on this machine —
// bounded by GOMAXPROCS, which the harness reports in the benchmark name
// suffix (-N). Results are byte-identical across shard-worker counts;
// only the shard count itself changes the model (see ARCHITECTURE.md).
func BenchmarkReplayParallel(b *testing.B) {
	const (
		racks    = 192
		requests = 200000
		degree   = 8
	)
	top := graph.FatTreeRacks(racks)
	model := core.CostModel{Metric: top.Metric(), Alpha: 30}
	ct, err := trace.Uniform(racks, requests, 11).Compile(model.Metric.Dist)
	if err != nil {
		b.Fatal(err)
	}
	cps := sim.Checkpoints(ct.Len(), 10)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			part, err := core.NewPartition(racks, shards)
			if err != nil {
				b.Fatal(err)
			}
			sh, err := core.NewSharded(part, func(s int) (core.Algorithm, error) {
				return core.NewRBMA(racks, degree, model, core.ShardSeed(1, s))
			})
			if err != nil {
				b.Fatal(err)
			}
			src := ct.Source()
			var res sim.RunResult
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sh.Reset()
				res, err = sim.RunSourceParallel(sh, src, model.Alpha, cps, 8192, shards)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(requests)*float64(b.N)/b.Elapsed().Seconds()/1e6, "mreq_per_s")
			if n := len(res.Series.Routing); n > 0 {
				b.ReportMetric(res.Series.Routing[n-1], "routing_cost")
			}
		})
	}
}

// BenchmarkEngineIngest measures the live matching engine end to end: a
// pipelined client streams batches over a real TCP loopback socket into
// an r-bma session, and every batch is answered with a cumulative-cost
// result frame. One op is one request. The PR 7 acceptance floor is
// ≥ 1 Mreq/s at 0 allocs/op — both ends reuse every buffer, so once the
// connection is warm neither client, connection handler nor session
// allocates (allocs/op counts the whole process, server goroutines
// included).
func BenchmarkEngineIngest(b *testing.B) {
	const (
		racks = 64
		batch = 1024
	)
	e := engine.New(engine.Options{})
	defer e.Close()
	if _, err := e.CreateSession(engine.SessionConfig{ID: "bench", Racks: racks, B: 8}); err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go e.ServeIngest(ln)
	c, _, err := engine.DialIngest(ln.Addr().String(), "bench", 8)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	st, err := trace.NewUniformStream(racks, 1<<16, 7)
	if err != nil {
		b.Fatal(err)
	}
	reqs := trace.Collect(st).Reqs
	nb := len(reqs) / batch
	// Warm-up pass: grows the client frame buffer, the connection's read
	// buffer and the session's scratch to steady state.
	for i := 0; i < nb; i++ {
		if _, err := c.Send(reqs[i*batch : (i+1)*batch]); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := c.Drain(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	idx := 0
	for sent := 0; sent < b.N; {
		n := batch
		if rem := b.N - sent; rem < n {
			n = rem
		}
		if _, err := c.Send(reqs[idx*batch : idx*batch+n]); err != nil {
			b.Fatal(err)
		}
		sent += n
		if idx++; idx == nb {
			idx = 0
		}
	}
	if _, err := c.Drain(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "mreq_per_s")
}

// --- Ablation benchmarks (the reproduction's design choices) ---

// BenchmarkAblationCachePolicy swaps the paging algorithm inside R-BMA:
// randomized marking (the paper's choice) vs LRU, FIFO and random eviction.
func BenchmarkAblationCachePolicy(b *testing.B) {
	tr, model := serveWorkload(50)
	tr = tr.Prefix(50000)
	policies := []struct {
		name string
		f    paging.Factory
	}{
		{"marking", paging.NewMarkingFactory},
		{"lru", paging.NewLRUFactory},
		{"fifo", paging.NewFIFOFactory},
		{"random", paging.NewRandomEvictFactory},
	}
	for _, p := range policies {
		b.Run(p.name, func(b *testing.B) {
			var routing float64
			for i := 0; i < b.N; i++ {
				alg, err := core.NewRBMA(50, 6, model, uint64(i),
					core.WithCacheFactory(p.f, p.name))
				if err != nil {
					b.Fatal(err)
				}
				routing = 0
				for _, req := range tr.Reqs {
					routing += alg.Serve(int(req.Src), int(req.Dst)).RoutingCost
				}
			}
			b.ReportMetric(routing, "routing_cost")
		})
	}
}

// BenchmarkAblationLazyVsEager compares the paper's lazy pruning
// (footnote 2) against eager removal.
func BenchmarkAblationLazyVsEager(b *testing.B) {
	tr, model := serveWorkload(50)
	tr = tr.Prefix(50000)
	modes := []struct {
		name string
		opts []core.RBMAOption
	}{
		{"lazy", nil},
		{"eager", []core.RBMAOption{core.WithEagerRemoval()}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				alg, err := core.NewRBMA(50, 6, model, uint64(i), m.opts...)
				if err != nil {
					b.Fatal(err)
				}
				total = 0
				for _, req := range tr.Reqs {
					total += alg.Serve(int(req.Src), int(req.Dst)).Total(model.Alpha)
				}
			}
			b.ReportMetric(total, "total_cost")
		})
	}
}

// BenchmarkAblationAlpha sweeps the reconfiguration cost (unstated in the
// paper; this reproduction defaults to 30, see figures.DefaultAlpha).
func BenchmarkAblationAlpha(b *testing.B) {
	top := graph.FatTreeRacks(50)
	p := trace.FacebookPreset(trace.Database, 50, 3)
	p.Requests = 50000
	tr, _ := trace.FacebookStyle(p)
	for _, alpha := range []float64{5, 30, 120} {
		model := core.CostModel{Metric: top.Metric(), Alpha: alpha}
		b.Run(fmt.Sprintf("alpha=%g", alpha), func(b *testing.B) {
			var routing float64
			for i := 0; i < b.N; i++ {
				alg, err := core.NewRBMA(50, 6, model, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				routing = 0
				for _, req := range tr.Reqs {
					routing += alg.Serve(int(req.Src), int(req.Dst)).RoutingCost
				}
			}
			b.ReportMetric(routing, "routing_cost")
		})
	}
}

// BenchmarkAblationClairvoyant compares online R-BMA against the
// Belady-cache variant (perfect predictions; paper §5 future work).
func BenchmarkAblationClairvoyant(b *testing.B) {
	tr, model := serveWorkload(50)
	tr = tr.Prefix(50000)
	b.Run("online", func(b *testing.B) {
		var total float64
		for i := 0; i < b.N; i++ {
			alg, _ := core.NewRBMA(50, 6, model, uint64(i))
			total = 0
			for _, req := range tr.Reqs {
				total += alg.Serve(int(req.Src), int(req.Dst)).Total(model.Alpha)
			}
		}
		b.ReportMetric(total, "total_cost")
	})
	b.Run("clairvoyant", func(b *testing.B) {
		var total float64
		for i := 0; i < b.N; i++ {
			alg, err := core.NewClairvoyantRBMA(tr, 6, model)
			if err != nil {
				b.Fatal(err)
			}
			total = 0
			for _, req := range tr.Reqs {
				total += alg.Serve(int(req.Src), int(req.Dst)).Total(model.Alpha)
			}
		}
		b.ReportMetric(total, "total_cost")
	})
}

// BenchmarkAblationBaselines lines up R-BMA against the wider baseline
// family: BMA, windowed batch recomputation, greedy-no-evict, oblivious.
func BenchmarkAblationBaselines(b *testing.B) {
	tr, model := serveWorkload(50)
	tr = tr.Prefix(50000)
	mk := map[string]func(i int) (core.Algorithm, error){
		"r-bma":     func(i int) (core.Algorithm, error) { return core.NewRBMA(50, 6, model, uint64(i)) },
		"bma":       func(i int) (core.Algorithm, error) { return core.NewBMA(50, 6, model) },
		"batch-1k":  func(i int) (core.Algorithm, error) { return core.NewBatch(50, 6, model, 1000, 0.5) },
		"noevict":   func(i int) (core.Algorithm, error) { return core.NewGreedyNoEvict(50, 6, model) },
		"rotor":     func(i int) (core.Algorithm, error) { return core.NewRotor(50, 6, model, 100) },
		"oblivious": func(i int) (core.Algorithm, error) { return core.NewOblivious(model) },
	}
	for name, f := range mk {
		b.Run(name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				alg, err := f(i)
				if err != nil {
					b.Fatal(err)
				}
				total = 0
				for _, req := range tr.Reqs {
					total += alg.Serve(int(req.Src), int(req.Dst)).Total(model.Alpha)
				}
			}
			b.ReportMetric(total, "total_cost")
		})
	}
}

// BenchmarkAblationPrediction sweeps the prediction-noise level of the
// prediction-augmented R-BMA (paper §5 future work): σ=0 is clairvoyant,
// large σ approaches uninformed eviction.
func BenchmarkAblationPrediction(b *testing.B) {
	tr, model := serveWorkload(50)
	tr = tr.Prefix(50000)
	for _, sigma := range []float64{0, 0.5, 2, 8} {
		b.Run(fmt.Sprintf("sigma=%g", sigma), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				alg, err := core.NewPredictiveRBMA(tr, 6, model, sigma, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				total = 0
				for _, req := range tr.Reqs {
					total += alg.Serve(int(req.Src), int(req.Dst)).Total(model.Alpha)
				}
			}
			b.ReportMetric(total, "total_cost")
		})
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkBlossomMWM(b *testing.B) {
	for _, n := range []int{20, 50, 100} {
		r := stats.NewRand(uint64(n))
		var edges []matching.WeightedEdge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Bool(0.3) {
					edges = append(edges, matching.WeightedEdge{U: u, V: v, W: float64(1 + r.Intn(1000))})
				}
			}
		}
		b.Run(fmt.Sprintf("n=%d/m=%d", n, len(edges)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matching.MaxWeightMatching(n, edges, false)
			}
		})
	}
}

func BenchmarkPagingAccess(b *testing.B) {
	r := stats.NewRand(5)
	seq := make([]uint64, 1<<16)
	for i := range seq {
		seq[i] = uint64(r.Intn(64))
	}
	factories := map[string]paging.Factory{
		"marking": paging.NewMarkingFactory,
		"lru":     paging.NewLRUFactory,
		"fifo":    paging.NewFIFOFactory,
		"clock":   paging.NewCLOCKFactory,
	}
	for name, f := range factories {
		b.Run(name, func(b *testing.B) {
			c := f(16, 1)
			for i := 0; i < b.N; i++ {
				c.Access(seq[i&(1<<16-1)])
			}
		})
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	p := trace.FacebookPreset(trace.Database, 100, 1)
	p.Requests = 100000
	b.Run("facebook-100k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := trace.FacebookStyle(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("microsoft-100k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			trace.MicrosoftStyle(50, 100000, uint64(i))
		}
	})
}

func BenchmarkFlowSimulation(b *testing.B) {
	top := graph.FatTreeRacks(32)
	model := core.CostModel{Metric: top.Metric(), Alpha: figures.DefaultAlpha}
	p := trace.FacebookPreset(trace.Database, 32, 11)
	p.Requests = 40000
	tr, _ := trace.FacebookStyle(p)
	cfg := flow.Config{
		LinkCapacity: 100, OpticalCapacity: 400,
		MeanFlowSize: 50, ArrivalRate: 4, Seed: 1,
	}
	b.Run("oblivious", func(b *testing.B) {
		var mean float64
		for i := 0; i < b.N; i++ {
			res, err := flow.SimulateOblivious(top, tr, cfg)
			if err != nil {
				b.Fatal(err)
			}
			mean = res.MeanFCT
		}
		b.ReportMetric(mean, "mean_fct")
	})
	b.Run("r-bma", func(b *testing.B) {
		var mean float64
		for i := 0; i < b.N; i++ {
			alg, _ := core.NewRBMA(32, 4, model, uint64(i))
			res, err := flow.SimulateWithAlgorithm(top, tr, cfg, alg)
			if err != nil {
				b.Fatal(err)
			}
			mean = res.MeanFCT
		}
		b.ReportMetric(mean, "mean_fct")
	})
}

func BenchmarkMetricConstruction(b *testing.B) {
	for _, racks := range []int{50, 100} {
		b.Run(fmt.Sprintf("racks=%d", racks), func(b *testing.B) {
			top := graph.FatTreeRacks(racks)
			for i := 0; i < b.N; i++ {
				top.Metric()
			}
		})
	}
}
