// Runstore: durable, resumable, sharded grid execution end to end — the
// library form of `experiments grid -store/-shard`, `experiments merge`
// and `experiments report`.
//
// The walkthrough splits one scenario grid into two shards, runs shard 0
// twice (the first attempt "crashes" partway, the second resumes from the
// job log and executes only what is missing), runs shard 1 in one go,
// merges both logs into a full-grid store, and renders it as a Markdown
// report with per-scenario tables and ASCII cost curves.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"obm/internal/report"
	"obm/internal/sim"
)

func main() {
	dir, err := os.MkdirTemp("", "obm-runstore")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. The grid: two scenarios, every job's outcome a pure function of
	//    its (scenario, alg, b, rep) identity — which is what makes the
	//    whole scheme sound.
	specs := []sim.ScenarioSpec{
		{
			Name: "hotspot", Family: "hotspot",
			Racks: 16, Requests: 20000, Seed: 1,
			Bs: []int{2, 4}, Reps: 2,
			Params: map[string]float64{"hotspots": 6},
		},
		{
			Name: "diurnal", Family: "diurnal",
			Racks: 16, Requests: 20000, Seed: 2,
			Bs: []int{2, 4}, Reps: 2,
		},
	}

	// 2. Shard 0, first attempt: a persist hook that fails after three
	//    appends stands in for a mid-run crash. Everything appended before
	//    the crash is already durable in shard0/jobs.jsonl.
	shard0 := filepath.Join(dir, "shard0")
	m0, err := report.NewManifest("runstore demo", specs, 8, report.Shard{Index: 0, Count: 2})
	if err != nil {
		log.Fatal(err)
	}
	st0, err := report.Create(shard0, m0)
	if err != nil {
		log.Fatal(err)
	}
	boom := errors.New("simulated crash")
	opt := st0.GridOptions(sim.GridOptions{Workers: 1})
	persist := opt.Persist
	appended := 0
	opt.Persist = func(j sim.GridJob, o sim.JobOutcome) error {
		if err := persist(j, o); err != nil {
			return err
		}
		if appended++; appended == 3 {
			return boom
		}
		return nil
	}
	if _, err := sim.RunGrid(st0.Manifest().Specs, opt); !errors.Is(err, boom) {
		log.Fatalf("expected the simulated crash, got %v", err)
	}
	st0.Close()
	fmt.Printf("shard 0 crashed: %d jobs durable\n", appended)

	// 3. Shard 0, resumed: reopen the store, run the same grid again —
	//    recorded jobs resolve through Lookup, only the rest execute.
	st0, err = report.Open(shard0)
	if err != nil {
		log.Fatal(err)
	}
	before := st0.Len()
	if _, err := st0.Run(sim.GridOptions{Workers: 1}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shard 0 resumed: %d recorded, %d executed\n", before, st0.Len()-before)
	st0.Close()

	// 4. Shard 1 runs independently — a second process or machine; the
	//    two shards own disjoint slices of the same job grid.
	shard1 := filepath.Join(dir, "shard1")
	m1, err := report.NewManifest("runstore demo", specs, 8, report.Shard{Index: 1, Count: 2})
	if err != nil {
		log.Fatal(err)
	}
	st1, err := report.Create(shard1, m1)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := st1.Run(sim.GridOptions{Workers: 1}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shard 1 complete: %d jobs\n", st1.Len())
	st1.Close()

	// 5. Merge both logs into one full-grid store and render it.
	merged, err := report.Merge(filepath.Join(dir, "merged"), shard0, shard1)
	if err != nil {
		log.Fatal(err)
	}
	defer merged.Close()
	missing, err := merged.Missing()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged: %d/%d jobs, %d missing\n",
		merged.Len(), merged.Manifest().TotalJobs, len(missing))

	var md strings.Builder
	if err := merged.WriteReport(&md); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("report: %d bytes of Markdown, including:\n\n", md.Len())
	for _, line := range strings.Split(md.String(), "\n") {
		if strings.HasPrefix(line, "#") || strings.HasPrefix(line, "| r-bma | 4 |") {
			fmt.Println(line)
		}
	}
}
