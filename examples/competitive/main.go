// Competitive: measures R-BMA's empirical competitive ratio against the
// exact offline optimum on instances small enough for the optimum to be
// computed by dynamic programming over all feasible matchings — an
// experimental companion to the paper's O(γ·log(b/(b−a+1))) bound
// (Corollary 3) and its (b,a) resource-augmentation setting.
package main

import (
	"fmt"
	"log"
	"math"

	"obm/internal/core"
	"obm/internal/graph"
	"obm/internal/trace"
)

func main() {
	const n = 5
	model := core.CostModel{Metric: graph.UniformMetric(n, 1), Alpha: 1}
	tr := trace.Uniform(n, 2000, 11)

	fmt.Printf("uniform instance: %d nodes, %d requests, α=1, ℓ=1\n\n", n, tr.Len())
	fmt.Printf("%3s %3s %12s %12s %9s %16s\n", "b", "a", "E[R-BMA]", "OPT(a)", "ratio", "2·ln(b/(b-a+1))+2")
	for _, ba := range [][2]int{{1, 1}, {2, 1}, {2, 2}, {3, 2}, {3, 3}} {
		b, a := ba[0], ba[1]
		opt, err := core.OfflineOPT(tr, a, model, 5_000_000)
		if err != nil {
			log.Fatal(err)
		}
		var sum float64
		const seeds = 8
		for s := uint64(0); s < seeds; s++ {
			alg, err := core.NewRBMA(n, b, model, s)
			if err != nil {
				log.Fatal(err)
			}
			for _, req := range tr.Reqs {
				sum += alg.Serve(int(req.Src), int(req.Dst)).Total(model.Alpha)
			}
		}
		mean := sum / seeds
		bound := 2*math.Log(float64(b)/float64(b-a+1)) + 2
		fmt.Printf("%3d %3d %12.0f %12.0f %9.3f %16.2f\n",
			b, a, mean, opt, mean/opt, bound)
	}
	fmt.Println("\nThe ratio column stays far below worst-case bounds on random inputs")
	fmt.Println("and shrinks as the augmentation gap b−a grows — the (b,a)-matching")
	fmt.Println("effect the paper proves in Corollary 3.")
}
