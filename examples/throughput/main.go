// Throughput: connects the paper's routing-cost objective to
// application-level performance. Routing cost is a "bandwidth tax" (§1.1):
// every extra hop consumes fabric capacity. This example replays the same
// workload through a flow-level simulator (per-link FIFO queueing) twice —
// once oblivious, once with R-BMA steering matched pairs onto dedicated
// optical circuits — and compares flow completion times (FCTs).
package main

import (
	"fmt"
	"log"

	"obm/internal/core"
	"obm/internal/flow"
	"obm/internal/graph"
	"obm/internal/trace"
)

func main() {
	const racks = 32
	top := graph.FatTreeRacks(racks)
	model := core.CostModel{Metric: top.Metric(), Alpha: 30}

	params := trace.FacebookPreset(trace.Database, racks, 11)
	params.Requests = 40000
	tr, err := trace.FacebookStyle(params)
	if err != nil {
		log.Fatal(err)
	}
	cfg := flow.Config{
		LinkCapacity:    100, // bytes per time unit on each fabric link
		OpticalCapacity: 400, // a circuit is a fat, exclusive pipe
		MeanFlowSize:    50,
		ArrivalRate:     4,
		Seed:            1,
	}

	obl, err := flow.SimulateOblivious(top, tr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range []int{2, 4, 8} {
		alg, err := core.NewRBMA(racks, b, model, 7)
		if err != nil {
			log.Fatal(err)
		}
		res, err := flow.SimulateWithAlgorithm(top, tr, cfg, alg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("r-bma b=%d: mean FCT %8.3f  p50 %8.3f  p99 %9.3f  optical share %5.1f%%\n",
			b, res.MeanFCT, res.P50FCT, res.P99FCT, 100*res.OpticalShare)
	}
	fmt.Printf("oblivious: mean FCT %8.3f  p50 %8.3f  p99 %9.3f\n",
		obl.MeanFCT, obl.P50FCT, obl.P99FCT)
	fmt.Println("\nMore circuits (larger b) offload more traffic from the shared fabric,")
	fmt.Println("cutting both the mean and the tail of the FCT distribution — the")
	fmt.Println("throughput benefit behind the paper's routing-cost objective.")
}
