// Quickstart: build a fat-tree, synthesize a skewed workload, run the
// paper's randomized online b-matching algorithm (R-BMA), and compare the
// routing cost against the oblivious (static-network-only) baseline.
package main

import (
	"fmt"
	"log"

	"obm/internal/core"
	"obm/internal/graph"
	"obm/internal/sim"
	"obm/internal/trace"
)

func main() {
	// 1. Static network: a fat-tree with 32 racks. The metric is the
	//    shortest-path distance between racks (2 within a pod, 4 across).
	top := graph.FatTreeRacks(32)
	model := core.CostModel{Metric: top.Metric(), Alpha: 30}

	// 2. Workload: a Facebook-database-style trace — spatially skewed with
	//    temporal locality, the regime where reconfiguration pays off.
	params := trace.FacebookPreset(trace.Database, 32, 1)
	params.Requests = 50000
	tr, err := trace.FacebookStyle(params)
	if err != nil {
		log.Fatal(err)
	}

	// 3. R-BMA with b = 4 reconfigurable links per rack.
	rbma, err := core.NewRBMA(32, 4, model, 42)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(rbma, tr, model.Alpha, sim.Checkpoints(tr.Len(), 5))
	if err != nil {
		log.Fatal(err)
	}

	// 4. Baseline: route everything over the static fat-tree.
	obl, _ := core.NewOblivious(model)
	oblRes, err := sim.Run(obl, tr, model.Alpha, sim.Checkpoints(tr.Len(), 5))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s, %d requests over %d racks\n", tr.Name, tr.Len(), tr.NumRacks)
	fmt.Printf("%-12s %14s %14s\n", "", "R-BMA", "Oblivious")
	for i, x := range res.Series.X {
		fmt.Printf("%-12d %14.0f %14.0f\n", x, res.Series.Routing[i], oblRes.Series.Routing[i])
	}
	final := len(res.Series.X) - 1
	saving := 1 - res.Series.Routing[final]/oblRes.Series.Routing[final]
	fmt.Printf("\nrouting-cost saving: %.1f%%  (matching size %d, %d adds, %d removals)\n",
		100*saving, res.FinalMatchingSize, res.Adds, res.Removals)
}
