// Grid: drive the scenario registry end to end on a small rack count —
// define JSON-encodable scenario specs for the new workload families
// (hotspot migration, diurnal swing, tenant mix), expand them into a
// (scenario × algorithm × b × rep) job grid, and execute it on the worker
// pool with streamed, bounded-memory trace replay.
package main

import (
	"fmt"
	"log"
	"os"

	"obm/internal/sim"
)

func main() {
	// 1. Scenario specs. Each names a workload family from the registry
	//    plus its knobs; everything is JSON-encodable, so grids can be
	//    loaded from files (`experiments grid -scenarios specs.json`).
	specs := []sim.ScenarioSpec{
		{
			Name: "hotspot", Family: "hotspot",
			Racks: 16, Requests: 20000, Seed: 1,
			Bs: []int{2, 4}, Reps: 2,
			Params: map[string]float64{"hotspots": 6, "migrate_every": 2500},
		},
		{
			Name: "diurnal", Family: "diurnal",
			Racks: 16, Requests: 20000, Seed: 2,
			Bs: []int{2, 4}, Reps: 2,
			Params: map[string]float64{"period": 5000},
		},
		{
			Name: "tenants", Family: "tenant-mix",
			Racks: 16, Requests: 20000, Seed: 3,
			Bs: []int{2, 4}, Reps: 2,
			Params: map[string]float64{"tenants": 4},
		},
	}

	// 2. Run the grid. Every job builds its own streaming source, so
	//    memory stays O(workers × chunk) no matter how long the traces
	//    are; repetitions aggregate into mean±std summary rows.
	res, err := sim.RunGrid(specs, sim.GridOptions{
		Workers: 4,
		Progress: func(done, total int, job sim.GridJob, err error) {
			fmt.Fprintf(os.Stderr, "[%2d/%d] %s\n", done, total, job)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Report: demand-aware algorithms should beat the oblivious
	//    baseline on every skewed scenario.
	fmt.Printf("%d aggregated rows over %d scenarios:\n\n", len(res.Rows), len(specs))
	for _, row := range res.SummaryRows() {
		fmt.Println(row)
	}
	fmt.Println()
	for _, scenario := range []string{"hotspot", "diurnal", "tenants"} {
		var best, obl float64
		var bestAlg string
		for _, r := range res.Rows {
			if r.Scenario != scenario {
				continue
			}
			if r.Alg == "oblivious" {
				obl = r.Routing.Mean
			} else if best == 0 || r.Routing.Mean < best {
				best, bestAlg = r.Routing.Mean, r.Alg
			}
		}
		fmt.Printf("%-8s best demand-aware: %-6s saving %.1f%% routing cost vs oblivious\n",
			scenario, bestAlg, 100*(1-best/obl))
	}
}
