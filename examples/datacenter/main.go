// Datacenter: the paper's head-to-head on one workload — R-BMA vs the
// deterministic BMA vs the offline static SO-BMA vs Oblivious, across a
// sweep of b (number of optical circuit switches), with averaged
// repetitions and an ASCII rendition of the routing-cost figure.
package main

import (
	"fmt"
	"log"

	"obm/internal/core"
	"obm/internal/graph"
	"obm/internal/sim"
	"obm/internal/trace"
)

func main() {
	const racks = 50
	top := graph.FatTreeRacks(racks)
	model := core.CostModel{Metric: top.Metric(), Alpha: 30}

	params := trace.FacebookPreset(trace.Hadoop, racks, 7)
	params.Requests = 60000
	tr, err := trace.FacebookStyle(params)
	if err != nil {
		log.Fatal(err)
	}
	stats := trace.Analyze(tr)
	fmt.Printf("workload %s: Gini %.2f (spatial skew), temporal score %.2f\n\n",
		tr.Name, stats.PairGini, stats.TemporalScore)

	cfg := sim.Config{
		Name:        "datacenter-example",
		Trace:       tr,
		Model:       model,
		Bs:          []int{3, 6, 12},
		Reps:        3,
		Checkpoints: sim.Checkpoints(tr.Len(), 10),
	}
	specs := []sim.AlgSpec{
		{
			Name: "r-bma", FixedB: -1,
			New: func(b int, rep uint64) (core.Algorithm, error) {
				return core.NewRBMA(racks, b, model, rep+uint64(b)<<32)
			},
		},
		{
			Name: "bma", FixedB: -1,
			New: func(b int, rep uint64) (core.Algorithm, error) {
				return core.NewBMA(racks, b, model)
			},
		},
		{
			Name: "so-bma", FixedB: -1,
			New: func(b int, rep uint64) (core.Algorithm, error) {
				return core.NewStaticFromTrace(tr, b, model)
			},
		},
		{
			Name: "oblivious", FixedB: 0,
			New: func(b int, rep uint64) (core.Algorithm, error) {
				return core.NewOblivious(model)
			},
		},
	}
	res, err := sim.RunExperiment(cfg, specs)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.SummaryRows() {
		fmt.Println(row)
	}
	fmt.Println()
	fmt.Println(sim.ASCIIChart("cumulative routing cost", res.Curves, 64, 14,
		func(a sim.Averaged, i int) float64 { return a.Routing[i] }))
}
