// Switchscheduler: views the b-matching through the optical-switch lens.
// Each of the b reconfigurable ports per rack corresponds to one optical
// circuit switch providing a matching between racks. This example runs
// R-BMA on a workload that shifts between communication patterns (a stable
// permutation phase, a hotspot phase, and a uniform phase) and reports how
// the scheduler reconfigures: per-phase reconfiguration counts, matching
// occupancy, and how quickly routing cost recovers after each shift.
package main

import (
	"fmt"
	"log"

	"obm/internal/core"
	"obm/internal/graph"
	"obm/internal/trace"
)

func main() {
	const racks = 24
	const b = 3
	top := graph.FatTreeRacks(racks)
	model := core.CostModel{Metric: top.Metric(), Alpha: 20}

	phases := []struct {
		name string
		gen  func() *trace.Trace
	}{
		{"permutation", func() *trace.Trace { return trace.Permutation(racks, 20000, 1) }},
		{"hotspot", func() *trace.Trace {
			m := trace.NewTrafficMatrix(racks)
			// Four elephant pairs dominate; background mice elsewhere.
			m.Set(0, 1, 500)
			m.Set(2, 3, 500)
			m.Set(4, 5, 500)
			m.Set(6, 7, 500)
			for u := 8; u < racks; u++ {
				m.Set(u, (u+5)%racks, 1)
			}
			return m.SampleIID(20000, 2)
		}},
		{"uniform", func() *trace.Trace { return trace.Uniform(racks, 20000, 3) }},
	}

	alg, err := core.NewRBMA(racks, b, model, 99)
	if err != nil {
		log.Fatal(err)
	}
	obl, _ := core.NewOblivious(model)

	fmt.Printf("optical scheduler: %d racks × %d circuit switches (α=%g)\n\n",
		racks, b, model.Alpha)
	fmt.Printf("%-12s %12s %12s %8s %8s %9s\n",
		"phase", "routing", "oblivious", "adds", "removes", "occupancy")
	for _, ph := range phases {
		tr := ph.gen()
		var routing, oblRouting float64
		adds, removals := 0, 0
		for _, req := range tr.Reqs {
			st := alg.Serve(int(req.Src), int(req.Dst))
			routing += st.RoutingCost
			adds += st.Adds
			removals += st.Removals
			oblRouting += obl.Serve(int(req.Src), int(req.Dst)).RoutingCost
		}
		occupancy := float64(alg.MatchingSize()) / float64(racks*b/2)
		fmt.Printf("%-12s %12.0f %12.0f %8d %8d %8.0f%%\n",
			ph.name, routing, oblRouting, adds, removals, 100*occupancy)
	}
	fmt.Println("\nnotes:")
	fmt.Println("  - the permutation phase converges to a near-perfect circuit schedule")
	fmt.Println("    (every rack pair on a direct optical link, occupancy ≤ 100%);")
	fmt.Println("  - the hotspot phase keeps only the elephant circuits;")
	fmt.Println("  - the uniform phase gives reconfiguration little to exploit, and the")
	fmt.Println("    k_e-forwarding of the uniform reduction throttles reconfiguration churn.")
}
