module obm

go 1.24
